package provplan

import (
	"context"
	"iter"
	"sync/atomic"

	"repro/internal/path"
	"repro/internal/provstore"
	"repro/internal/provtrace"
)

// A RowKind discriminates the variants of a result Row.
type RowKind int

const (
	// RowRecord carries one matching record (select).
	RowRecord RowKind = iota
	// RowTid carries one transaction id (mod, hist).
	RowTid
	// RowValue carries one scalar answer (aggregates, src). Found is
	// false when the answer does not exist (min/max of an empty result,
	// src of external or pre-existing data).
	RowValue
	// RowEvent carries one trace step.
	RowEvent
	// RowEnd terminates a trace with its origin classification.
	RowEnd
	// RowAnalyze carries the per-operator execution analysis — the final
	// row of an analyze-mode stream, after every data row.
	RowAnalyze
)

// A Row is one element of a query's result stream — the tagged union the
// /v1/query NDJSON cursor carries. Which variants appear, and in what
// shape, depends on the query kind:
//
//	select        RowRecord*               (in the requested order)
//	select w/ agg RowValue
//	src           RowValue
//	mod, hist     RowTid*
//	trace         RowEvent* RowEnd
//
// A query with Analyze set appends one RowAnalyze after its data rows,
// whatever its kind.
type Row struct {
	Kind RowKind

	Rec      provstore.Record // RowRecord
	Tid      int64            // RowTid
	Val      int64            // RowValue
	Found    bool             // RowValue
	Event    Event            // RowEvent
	Origin   Origin           // RowEnd
	External path.Path        // RowEnd (when Origin == OriginExternal)
	Analysis *Analysis        // RowAnalyze
}

// A Result is a drained row stream, decoded by query kind; see Collect.
type Result struct {
	// Records holds a select's matching records.
	Records []provstore.Record
	// Tids holds a mod or hist answer.
	Tids []int64
	// Value/Found hold an aggregate or src answer.
	Value int64
	Found bool
	// Trace holds a trace answer.
	Trace TraceResult
	// Scanned counts records pulled from backend cursors during local
	// execution — the work metric pushdown minimizes. It is 0 when the
	// plan was delegated to a remote executor.
	Scanned int64
	// Analysis holds the per-operator execution measurements of an
	// analyze-mode query (local or delegated); nil otherwise.
	Analysis *Analysis
}

// An Executor is a backend that can execute a whole declarative plan
// itself — the cpdb:// client implements it by shipping the Query to the
// server's POST /v1/query, so the entire query (every chain step of a
// trace, every BFS wave of a mod) costs one round trip. Run prefers an
// Executor over local compilation.
type Executor interface {
	ExecPlan(ctx context.Context, q *Query) iter.Seq2[Row, error]
}

// Run executes q against b and streams the result rows: delegated wholesale
// when the backend is an Executor, compiled and run locally otherwise. The
// returned cursor follows the provstore cursor contract (in-stream errors,
// prompt release on break, cancellation between rows).
func Run(ctx context.Context, b provstore.Backend, q *Query) iter.Seq2[Row, error] {
	if ex, ok := b.(Executor); ok {
		return ex.ExecPlan(ctx, q)
	}
	pl, err := Compile(b, q)
	if err != nil {
		return rowError(err)
	}
	return pl.Rows(ctx)
}

// Collect executes q against b (delegating like Run) and drains the row
// stream into a Result.
func Collect(ctx context.Context, b provstore.Backend, q *Query) (*Result, error) {
	if ex, ok := b.(Executor); ok {
		return CollectRows(ex.ExecPlan(ctx, q))
	}
	pl, err := Compile(b, q)
	if err != nil {
		return nil, err
	}
	return pl.Collect(ctx)
}

// CollectRows drains a row stream into a Result.
func CollectRows(rows iter.Seq2[Row, error]) (*Result, error) {
	res := &Result{}
	for row, err := range rows {
		if err != nil {
			return nil, err
		}
		switch row.Kind {
		case RowRecord:
			res.Records = append(res.Records, row.Rec)
		case RowTid:
			res.Tids = append(res.Tids, row.Tid)
		case RowValue:
			res.Value, res.Found = row.Val, row.Found
		case RowEvent:
			res.Trace.Events = append(res.Trace.Events, row.Event)
		case RowEnd:
			res.Trace.Origin, res.Trace.External = row.Origin, row.External
		case RowAnalyze:
			res.Analysis = row.Analysis
			if row.Analysis != nil {
				res.Scanned = row.Analysis.Scanned
			}
		}
	}
	return res, nil
}

// rowError is a row cursor that yields nothing but err.
func rowError(err error) iter.Seq2[Row, error] {
	return func(yield func(Row, error) bool) {
		yield(Row{}, err)
	}
}

// Rows executes the plan and streams its result rows (see Row for the
// per-kind stream shapes). With Query.Analyze set, execution is tapped
// per operator and one RowAnalyze trailer follows the data rows — which is
// what POST /v1/query streams back, keeping a remote analyze at exactly
// one round trip.
func (pl *Plan) Rows(ctx context.Context) iter.Seq2[Row, error] {
	if !pl.q.Analyze && !provtrace.Active(ctx) {
		return pl.rows(ctx, nil)
	}
	// Analyze mode and tracing share the analyzer taps; a traced
	// non-analyze query measures operators but emits no RowAnalyze
	// trailer, so its row stream is byte-identical to an untraced run.
	var scanned atomic.Int64
	ex := &exec{scanned: &scanned, az: newAnalyzer()}
	return func(yield func(Row, error) bool) {
		spanCtx, sp := planSpan(ctx, string(pl.q.Op))
		defer func() { finishPlanSpan(spanCtx, sp, ex.az, scanned.Load()) }()
		for row, err := range pl.rows(spanCtx, ex) {
			if err != nil {
				sp.SetErr(err)
			}
			if !yield(row, err) || err != nil {
				return
			}
		}
		if pl.q.Analyze {
			yield(Row{Kind: RowAnalyze, Analysis: ex.az.analysis(scanned.Load())}, nil)
		}
	}
}

// Collect executes the plan and drains its rows into a Result, including
// the Scanned work counter — the instrumented form of Rows, and the way to
// measure what a plan compiled with explicit Options (say, NoPushdown)
// actually pulled from the store.
func (pl *Plan) Collect(ctx context.Context) (*Result, error) {
	var scanned atomic.Int64
	ex := &exec{scanned: &scanned}
	spanCtx, sp := planSpan(ctx, string(pl.q.Op))
	if pl.q.Analyze || sp != nil {
		ex.az = newAnalyzer()
	}
	res, err := CollectRows(pl.rows(spanCtx, ex))
	if err != nil {
		sp.SetErr(err)
		finishPlanSpan(spanCtx, sp, ex.az, scanned.Load())
		return nil, err
	}
	finishPlanSpan(spanCtx, sp, ex.az, scanned.Load())
	res.Scanned = scanned.Load()
	if pl.q.Analyze && ex.az != nil {
		res.Analysis = ex.az.analysis(res.Scanned)
	}
	return res, nil
}

func (pl *Plan) rows(ctx context.Context, ex *exec) iter.Seq2[Row, error] {
	switch pl.q.Op {
	case OpSelect:
		if pl.q.Agg != "" {
			return func(yield func(Row, error) bool) {
				v, found, err := pl.aggregate(ctx, ex)
				if err != nil {
					yield(Row{}, err)
					return
				}
				yield(Row{Kind: RowValue, Val: v, Found: found}, nil)
			}
		}
		return func(yield func(Row, error) bool) {
			for r, err := range pl.records(ctx, ex) {
				if err != nil {
					yield(Row{}, err)
					return
				}
				if !yield(Row{Kind: RowRecord, Rec: r}, nil) {
					return
				}
			}
		}
	case OpTrace:
		return func(yield func(Row, error) bool) {
			tr, err := pl.runTrace(ctx, ex)
			if err != nil {
				yield(Row{}, err)
				return
			}
			for _, ev := range tr.Events {
				if !yield(Row{Kind: RowEvent, Event: ev}, nil) {
					return
				}
			}
			yield(Row{Kind: RowEnd, Origin: tr.Origin, External: tr.External}, nil)
		}
	case OpSrc:
		return func(yield func(Row, error) bool) {
			tid, ok, err := pl.runSrc(ctx, ex)
			if err != nil {
				yield(Row{}, err)
				return
			}
			yield(Row{Kind: RowValue, Val: tid, Found: ok}, nil)
		}
	case OpHist, OpMod:
		return func(yield func(Row, error) bool) {
			var tids []int64
			var err error
			if pl.q.Op == OpHist {
				tids, err = pl.runHist(ctx, ex)
			} else {
				tids, err = pl.runMod(ctx, ex)
			}
			if err != nil {
				yield(Row{}, err)
				return
			}
			for _, t := range tids {
				if !yield(Row{Kind: RowTid, Tid: t}, nil) {
					return
				}
			}
		}
	default:
		return rowError(badQuery("unknown query kind %q", pl.q.Op))
	}
}
