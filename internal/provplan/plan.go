package provplan

import (
	"context"
	"fmt"
	"iter"
	"slices"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/path"
	"repro/internal/provstore"
)

// This file is the compiler: Compile turns a declarative Query into a Plan
// — an access-path choice plus a pipeline of composable cursor operators
// (filter, semi-join, early-stop, order, limit, aggregate), each an
// iter.Seq2[Record, error] transformer honoring the cursor contract of
// provstore/scan.go. Execution is lazy; nothing touches the backend until
// the plan's cursor is ranged.

// An accessKind names the index access path a select compiles to.
type accessKind int

const (
	accessAll          accessKind = iota // ScanAll: (Tid, Loc) order
	accessAllAfter                       // ScanAllAfter keyset seek: (Tid, Loc) order
	accessTid                            // ScanTid: (Loc, Tid) order at one tid
	accessLoc                            // ScanLoc: Tid order at one loc (both orders hold)
	accessLocPrefix                      // ScanLocPrefix: (Loc, Tid) order
	accessLocAncestors                   // ScanLocWithAncestors: (Tid, Loc) order
)

func (a accessKind) String() string {
	switch a {
	case accessAll:
		return "scan-all"
	case accessAllAfter:
		return "scan-all-after"
	case accessTid:
		return "scan-tid"
	case accessLoc:
		return "scan-loc"
	case accessLocPrefix:
		return "scan-loc-prefix"
	case accessLocAncestors:
		return "scan-loc-ancestors"
	default:
		return fmt.Sprintf("access(%d)", int(a))
	}
}

// compiledPred is a Pred with its textual paths and patterns resolved.
type compiledPred struct {
	tidMin, tidMax int64
	ops            string
	locPat         *path.Pattern
	locUnder       *path.Path
	locAbove       *path.Path
	srcPat         *path.Pattern
	srcUnder       *path.Path
}

// match is the full predicate — always applied as the residual filter, so
// access-path selection can never change results, only work.
func (p *compiledPred) match(r provstore.Record) bool {
	if p.tidMin > 0 && r.Tid < p.tidMin {
		return false
	}
	if p.tidMax > 0 && r.Tid > p.tidMax {
		return false
	}
	if p.ops != "" && !strings.ContainsRune(p.ops, rune(r.Op)) {
		return false
	}
	if p.locPat != nil && !p.locPat.Matches(r.Loc) {
		return false
	}
	if p.locUnder != nil && !p.locUnder.IsPrefixOf(r.Loc) {
		return false
	}
	if p.locAbove != nil && !r.Loc.IsPrefixOf(*p.locAbove) {
		return false
	}
	if p.srcPat != nil && (r.Src.IsRoot() || !p.srcPat.Matches(r.Src)) {
		return false
	}
	if p.srcUnder != nil && (r.Src.IsRoot() || !p.srcUnder.IsPrefixOf(r.Src)) {
		return false
	}
	return true
}

func compilePred(w Pred) (compiledPred, error) {
	var cp compiledPred
	if w.TidMin < 0 || w.TidMax < 0 {
		return cp, badQuery("tid bounds must be positive")
	}
	cp.tidMin, cp.tidMax = w.TidMin, w.TidMax
	if cp.tidMin > 0 && cp.tidMax > 0 && cp.tidMin > cp.tidMax {
		return cp, badQuery("empty tid range %d..%d", cp.tidMin, cp.tidMax)
	}
	if w.Ops != "" {
		cp.ops = canonicalOps(w.Ops)
		for _, k := range cp.ops {
			if !provstore.OpKind(k).Valid() {
				return cp, badQuery("unknown op %q (want I, C or D)", string(k))
			}
		}
	}
	if w.Loc != "" {
		pat, err := path.ParsePattern(w.Loc)
		if err != nil {
			return cp, badQuery("loc pattern: %v", err)
		}
		cp.locPat = &pat
	}
	if w.LocUnder != "" {
		p, err := parsePathArg("loc>=", w.LocUnder)
		if err != nil {
			return cp, err
		}
		cp.locUnder = &p
	}
	if w.LocAbove != "" {
		p, err := parsePathArg("loc<=", w.LocAbove)
		if err != nil {
			return cp, err
		}
		cp.locAbove = &p
	}
	if w.Src != "" {
		pat, err := path.ParsePattern(w.Src)
		if err != nil {
			return cp, badQuery("src pattern: %v", err)
		}
		cp.srcPat = &pat
	}
	if w.SrcUnder != "" {
		p, err := parsePathArg("src>=", w.SrcUnder)
		if err != nil {
			return cp, err
		}
		cp.srcUnder = &p
	}
	return cp, nil
}

// A Plan is a compiled Query bound to a backend, ready to execute. Plans
// are immutable and safe for concurrent use; each Rows call is an
// independent execution.
type Plan struct {
	b provstore.Backend
	q *Query

	// select compilation
	pred      compiledPred
	join      *compiledJoin
	access    accessKind
	accessLoc path.Path                 // argument of the loc-based access paths
	accessTid int64                     // argument of accessTid / seek key of accessAllAfter
	stopTid   int64                     // >0: cut a Tid-ascending stream after this tid
	order     string                    // resolved result order
	streamed  bool                      // access order satisfies the requested order
	shards    *provstore.ShardedBackend // non-nil: scatter below the merge

	// ancestry compilation
	path path.Path
	asOf int64

	explain []string
}

// compiledJoin is a Join with its subquery compiled.
type compiledJoin struct {
	on  string
	sub *Plan
}

// Options tune compilation. The zero value is the default planner.
type Options struct {
	// NoPushdown disables access-path selection, early stopping and
	// shard scatter: every select runs as a full ScanAll with a
	// client-side residual filter — the baseline the bench sweep
	// compares the planner against.
	NoPushdown bool
}

// Compile validates q and builds its plan over b.
func Compile(b provstore.Backend, q *Query) (*Plan, error) {
	return CompileWith(b, q, Options{})
}

// CompileWith is Compile with explicit Options.
func CompileWith(b provstore.Backend, q *Query, opts Options) (*Plan, error) {
	if q == nil {
		return nil, badQuery("nil query")
	}
	switch q.Op {
	case OpSelect:
		return compileSelect(b, q, opts)
	case OpTrace, OpHist, OpMod, OpSrc:
		if q.AsOf < 0 {
			return nil, badQuery("asof must be positive")
		}
		p, err := parsePathArg("path", q.Path)
		if err != nil {
			return nil, err
		}
		pl := &Plan{b: b, q: q, path: p, asOf: q.AsOf}
		pl.explain = []string{fmt.Sprintf("%s(%s) via iterated selects", q.Op, p)}
		return pl, nil
	default:
		return nil, badQuery("unknown query kind %q", q.Op)
	}
}

func compileSelect(b provstore.Backend, q *Query, opts Options) (*Plan, error) {
	pl := &Plan{b: b, q: q}
	var err error
	if pl.pred, err = compilePred(q.Where); err != nil {
		return nil, err
	}
	switch q.Agg {
	case "", AggCount, AggMinTid, AggMaxTid:
	default:
		return nil, badQuery("unknown aggregate %q", q.Agg)
	}
	if q.Agg != "" && (q.Order != "" || q.Desc || q.Limit > 0) {
		return nil, badQuery("aggregate cannot combine with order/desc/limit")
	}
	if q.Limit < 0 {
		return nil, badQuery("limit must be positive")
	}
	pl.order = q.Order
	switch pl.order {
	case "":
		pl.order = OrderTidLoc
	case OrderTidLoc, OrderLocTid:
	default:
		return nil, badQuery("unknown order %q", q.Order)
	}
	if q.Join != nil {
		on := q.Join.On
		if on == "" {
			on = JoinTid
		}
		switch on {
		case JoinTid, JoinSrcLoc, JoinLocSrc:
		default:
			return nil, badQuery("unknown join variable %q", q.Join.On)
		}
		if q.Join.Sub == nil {
			return nil, badQuery("join without subquery")
		}
		if q.Join.Sub.Op != OpSelect {
			return nil, badQuery("join subquery must be a select, not %q", q.Join.Sub.Op)
		}
		if q.Join.Sub.Agg != "" {
			return nil, badQuery("join subquery cannot aggregate")
		}
		sub, err := CompileWith(b, q.Join.Sub, opts)
		if err != nil {
			return nil, fmt.Errorf("join subquery: %w", err)
		}
		pl.join = &compiledJoin{on: on, sub: sub}
	}

	if opts.NoPushdown {
		pl.access = accessAll
		pl.streamed = pl.order == OrderTidLoc && !q.Desc
		pl.buildExplain("full-scan (pushdown disabled)")
		return pl, nil
	}
	pl.chooseAccess()

	// A Tid-ascending access stream can stop at the first record past the
	// upper tid bound — the rest of the cursor is never pulled.
	if pl.pred.tidMax > 0 {
		switch pl.access {
		case accessAll, accessAllAfter, accessLocAncestors, accessLoc:
			pl.stopTid = pl.pred.tidMax
		}
	}
	switch pl.access {
	case accessAll, accessAllAfter, accessLocAncestors:
		pl.streamed = pl.order == OrderTidLoc
	case accessTid, accessLocPrefix:
		pl.streamed = pl.order == OrderLocTid
	case accessLoc:
		pl.streamed = true // a single location satisfies both orders
	}
	if q.Desc {
		pl.streamed = false
	}

	// Scatter paths on a sharded store push the residual filter (or the
	// whole aggregate) below the k-way merge, one subplan per shard.
	if sb, ok := b.(*provstore.ShardedBackend); ok && sb.NumShards() > 1 {
		switch pl.access {
		case accessAll, accessAllAfter, accessTid, accessLocPrefix:
			pl.shards = sb
		}
	}
	pl.buildExplain("")
	return pl, nil
}

// chooseAccess picks the most selective access path the predicate admits.
// The full predicate is always re-applied as the residual filter, so the
// choice affects only how many records are pulled, never which are kept.
func (pl *Plan) chooseAccess() {
	p := &pl.pred
	if p.locAbove != nil {
		pl.access, pl.accessLoc = accessLocAncestors, *p.locAbove
		return
	}
	if p.locPat != nil && p.locPat.IsExact() {
		loc, _ := p.locPat.AsPath()
		pl.access, pl.accessLoc = accessLoc, loc
		return
	}
	// The deepest concrete location prefix the loc predicates agree on:
	// an explicit loc>=P bound, or the concrete leading labels of a
	// wildcard pattern (every match of "T/a/*/b" lies under "T/a").
	var prefix path.Path
	if p.locUnder != nil {
		prefix = *p.locUnder
	}
	if p.locPat != nil {
		if cp := concretePrefix(*p.locPat); cp.Len() > prefix.Len() {
			prefix = cp
		}
	}
	if prefix.Len() > 0 {
		pl.access, pl.accessLoc = accessLocPrefix, prefix
		return
	}
	if p.tidMin > 0 && p.tidMin == p.tidMax {
		pl.access, pl.accessTid = accessTid, p.tidMin
		return
	}
	if p.tidMin > 0 {
		// Every stored location is strictly greater than path.Root, so
		// the keys strictly after (tidMin, Root) are exactly the records
		// with Tid >= tidMin (pinned by TestSeekKeyForTidRange).
		pl.access, pl.accessTid = accessAllAfter, p.tidMin
		return
	}
	pl.access = accessAll
}

// concretePrefix returns the longest leading run of non-wildcard components
// of a pattern as a path.
func concretePrefix(pat path.Pattern) path.Path {
	s := pat.String()
	if s == "" {
		return path.Root
	}
	labels := strings.Split(s, "/")
	n := 0
	for n < len(labels) && labels[n] != path.Wildcard {
		n++
	}
	p, err := path.TryNew(labels[:n]...)
	if err != nil {
		return path.Root
	}
	return p
}

func (pl *Plan) buildExplain(note string) {
	var parts []string
	switch pl.access {
	case accessAll:
		parts = append(parts, "access=scan-all")
	case accessAllAfter:
		parts = append(parts, fmt.Sprintf("access=scan-all-after(%d, ε)", pl.accessTid))
	case accessTid:
		parts = append(parts, fmt.Sprintf("access=scan-tid(%d)", pl.accessTid))
	default:
		parts = append(parts, fmt.Sprintf("access=%s(%s)", pl.access, pl.accessLoc))
	}
	if pl.stopTid > 0 {
		parts = append(parts, fmt.Sprintf("stop=tid>%d", pl.stopTid))
	}
	if pl.q.Agg != "" {
		parts = append(parts, "agg="+pl.q.Agg)
	} else {
		mode := "sort"
		if pl.streamed {
			mode = "stream"
		}
		parts = append(parts, fmt.Sprintf("order=%s (%s)", pl.order, mode))
		if pl.q.Limit > 0 {
			parts = append(parts, fmt.Sprintf("limit=%d", pl.q.Limit))
		}
	}
	if pl.shards != nil {
		parts = append(parts, fmt.Sprintf("parallel=shards(%d)", pl.shards.NumShards()))
	}
	if pl.join != nil {
		parts = append(parts, "semi-join="+pl.join.on)
	}
	if note != "" {
		parts = append(parts, note)
	}
	pl.explain = []string{strings.Join(parts, " ")}
	if pl.join != nil {
		for _, line := range pl.join.sub.Explain() {
			pl.explain = append(pl.explain, "  sub: "+line)
		}
	}
}

// Explain describes the chosen access path, stream cuts and parallelism,
// one line per plan node.
func (pl *Plan) Explain() []string { return slices.Clone(pl.explain) }

// --- execution --------------------------------------------------------------

// accessScan opens the plan's access cursor on one backend (a shard, or the
// whole store), counting pulled records into the execution's Scanned
// counter and, in analyze mode, its access operator tap (shared across
// shards: the tap totals what the whole scatter pulled).
func (pl *Plan) accessScan(ctx context.Context, b provstore.Backend, ex *exec) iter.Seq2[provstore.Record, error] {
	var scan iter.Seq2[provstore.Record, error]
	switch pl.access {
	case accessAll:
		scan = b.ScanAll(ctx)
	case accessAllAfter:
		scan = b.ScanAllAfter(ctx, pl.accessTid, path.Root)
	case accessTid:
		scan = b.ScanTid(ctx, pl.accessTid)
	case accessLoc:
		scan = b.ScanLoc(ctx, pl.accessLoc)
	case accessLocPrefix:
		scan = b.ScanLocPrefix(ctx, pl.accessLoc)
	case accessLocAncestors:
		scan = b.ScanLocWithAncestors(ctx, pl.accessLoc)
	default:
		return provstore.ScanError(badQuery("unplanned access %v", pl.access))
	}
	return ex.op("access:" + pl.access.String()).tap(counted(scan, ex.counter()))
}

// counted wraps a cursor to count records pulled from it.
func counted(scan iter.Seq2[provstore.Record, error], scanned *atomic.Int64) iter.Seq2[provstore.Record, error] {
	if scanned == nil {
		return scan
	}
	return func(yield func(provstore.Record, error) bool) {
		for r, err := range scan {
			if err == nil {
				scanned.Add(1)
			}
			if !yield(r, err) {
				return
			}
		}
	}
}

// filtered applies the residual predicate, the optional join key filter and
// the early tid stop on one access stream. The analyze tap t (nil outside
// analyze mode) counts records in/out and the time spent waiting on the
// upstream access cursor.
func (pl *Plan) filtered(scan iter.Seq2[provstore.Record, error], keys *joinKeys, t *opStat) iter.Seq2[provstore.Record, error] {
	return func(yield func(provstore.Record, error) bool) {
		var start time.Time
		if t != nil {
			start = time.Now()
		}
		for r, err := range scan {
			if t != nil {
				t.ns.Add(time.Since(start).Nanoseconds())
				if err == nil {
					t.in.Add(1)
				}
			}
			if err != nil {
				yield(provstore.Record{}, err)
				return
			}
			if pl.stopTid > 0 && r.Tid > pl.stopTid {
				return // Tid-ascending stream: nothing later matches
			}
			if pl.pred.match(r) && (keys == nil || keys.match(r)) {
				t.addOut()
				if !yield(r, nil) {
					return
				}
			}
			if t != nil {
				start = time.Now()
			}
		}
		if t != nil {
			t.ns.Add(time.Since(start).Nanoseconds())
		}
	}
}

// joinKeys is a materialized semi-join key set.
type joinKeys struct {
	on   string
	tids map[int64]struct{}
	locs map[string]struct{} // binary-encoded paths
}

func (k *joinKeys) match(r provstore.Record) bool {
	switch k.on {
	case JoinTid:
		_, ok := k.tids[r.Tid]
		return ok
	case JoinSrcLoc:
		if r.Src.IsRoot() {
			return false
		}
		_, ok := k.locs[string(r.Src.AppendBinary(nil))]
		return ok
	default: // JoinLocSrc
		_, ok := k.locs[string(r.Loc.AppendBinary(nil))]
		return ok
	}
}

// buildJoinKeys runs the subquery and materializes the join key set. In
// analyze mode the subquery's operators run under the "sub:" prefix and the
// materialization itself reports as "join-build" (out = distinct keys).
func (pl *Plan) buildJoinKeys(ctx context.Context, ex *exec) (*joinKeys, error) {
	if pl.join == nil {
		return nil, nil
	}
	t := ex.op("join-build")
	var start time.Time
	if t != nil {
		start = time.Now()
	}
	keys := &joinKeys{on: pl.join.on}
	switch pl.join.on {
	case JoinTid:
		keys.tids = make(map[int64]struct{})
	default:
		keys.locs = make(map[string]struct{})
	}
	for r, err := range pl.join.sub.records(ctx, ex.sub("sub:")) {
		if err != nil {
			return nil, fmt.Errorf("join subquery: %w", err)
		}
		if t != nil {
			t.in.Add(1)
		}
		switch pl.join.on {
		case JoinTid:
			keys.tids[r.Tid] = struct{}{}
		case JoinSrcLoc:
			keys.locs[string(r.Loc.AppendBinary(nil))] = struct{}{}
		default: // JoinLocSrc
			if !r.Src.IsRoot() {
				keys.locs[string(r.Src.AppendBinary(nil))] = struct{}{}
			}
		}
	}
	if t != nil {
		t.out.Add(int64(len(keys.tids) + len(keys.locs)))
		t.ns.Add(time.Since(start).Nanoseconds())
	}
	return keys, nil
}

// matched is the ordered-by-access, filtered record stream — the plan body
// shared by the row and aggregate paths. The semi-join key set must already
// be built.
func (pl *Plan) matched(ctx context.Context, keys *joinKeys, ex *exec) iter.Seq2[provstore.Record, error] {
	ft := ex.op("filter")
	if pl.shards == nil {
		return pl.filtered(pl.accessScan(ctx, pl.b, ex), keys, ft)
	}
	// Scatter: one filtered subplan per shard, merged back into the
	// access order. Each shard's stream is cut and filtered independently
	// (below the merge), so the merge only ever sees matching records.
	// All shards share the access and filter taps — the analysis reports
	// scatter totals, not per-shard rows.
	cmp := provstore.CompareTidLoc
	if pl.access == accessTid || pl.access == accessLocPrefix {
		cmp = provstore.CompareLocTid
	}
	cursors := make([]iter.Seq2[provstore.Record, error], pl.shards.NumShards())
	for i := range cursors {
		cursors[i] = pl.filtered(pl.accessScan(ctx, pl.shards.Shard(i), ex), keys, ft)
	}
	return ex.op("merge").tap(provstore.MergeScans(cmp, cursors...))
}

// records executes a select plan as a record cursor in the requested order,
// applying limit. The cursor follows the provstore cursor contract.
func (pl *Plan) records(ctx context.Context, ex *exec) iter.Seq2[provstore.Record, error] {
	if pl.q.Op != OpSelect || pl.q.Agg != "" {
		return provstore.ScanError(badQuery("%s plan has no record stream", pl.q.Op))
	}
	return func(yield func(provstore.Record, error) bool) {
		keys, err := pl.buildJoinKeys(ctx, ex)
		if err != nil {
			yield(provstore.Record{}, err)
			return
		}
		stream := pl.matched(ctx, keys, ex)
		if !pl.streamed {
			t := ex.op("sort")
			var start time.Time
			if t != nil {
				start = time.Now()
			}
			recs, err := provstore.CollectScan(stream)
			if err != nil {
				yield(provstore.Record{}, err)
				return
			}
			cmp := provstore.CompareTidLoc
			if pl.order == OrderLocTid {
				cmp = provstore.CompareLocTid
			}
			sort.SliceStable(recs, func(i, j int) bool { return cmp(recs[i], recs[j]) < 0 })
			if pl.q.Desc {
				slices.Reverse(recs)
			}
			if t != nil {
				t.in.Add(int64(len(recs)))
				t.out.Add(int64(len(recs)))
				t.ns.Add(time.Since(start).Nanoseconds())
			}
			stream = provstore.ScanSlice(recs)
		}
		out := ex.op("output")
		var start time.Time
		if out != nil {
			start = time.Now()
		}
		n := 0
		for r, err := range stream {
			if err != nil {
				yield(provstore.Record{}, err)
				return
			}
			if out != nil {
				out.ns.Add(time.Since(start).Nanoseconds())
				out.in.Add(1)
				out.out.Add(1)
			}
			if !yield(r, nil) {
				return
			}
			if out != nil {
				start = time.Now()
			}
			n++
			if pl.q.Limit > 0 && n >= pl.q.Limit {
				return
			}
		}
		if out != nil {
			out.ns.Add(time.Since(start).Nanoseconds())
		}
	}
}

// Records executes a select plan and materializes its records.
func (pl *Plan) Records(ctx context.Context) ([]provstore.Record, error) {
	return provstore.CollectScan(pl.records(ctx, nil))
}

// aggPartial is one stream's aggregate contribution.
type aggPartial struct {
	count int64
	min   int64
	max   int64
	found bool
}

func (a *aggPartial) add(r provstore.Record) {
	a.count++
	if !a.found || r.Tid < a.min {
		a.min = r.Tid
	}
	if !a.found || r.Tid > a.max {
		a.max = r.Tid
	}
	a.found = true
}

func (a *aggPartial) merge(b aggPartial) {
	if !b.found {
		return
	}
	a.count += b.count
	if !a.found || b.min < a.min {
		a.min = b.min
	}
	if !a.found || b.max > a.max {
		a.max = b.max
	}
	a.found = true
}

// aggregate executes an aggregating select. On a sharded store the whole
// aggregate runs once per shard concurrently (no merge at all) and the
// partials combine. Taps are registered before the fan-out so the analysis
// lists operators in wiring order regardless of shard scheduling.
func (pl *Plan) aggregate(ctx context.Context, ex *exec) (val int64, found bool, err error) {
	keys, err := pl.buildJoinKeys(ctx, ex)
	if err != nil {
		return 0, false, err
	}
	ex.op("access:" + pl.access.String())
	ft := ex.op("filter")
	at := ex.op("agg:" + pl.q.Agg)
	var start time.Time
	if at != nil {
		start = time.Now()
	}
	var total aggPartial
	if pl.shards != nil {
		partials := make([]aggPartial, pl.shards.NumShards())
		err := provstore.Fanout(ctx, pl.shards.NumShards(), func(i int) error {
			for r, err := range pl.filtered(pl.accessScan(ctx, pl.shards.Shard(i), ex), keys, ft) {
				if err != nil {
					return err
				}
				partials[i].add(r)
			}
			return nil
		})
		if err != nil {
			return 0, false, err
		}
		for _, p := range partials {
			total.merge(p)
		}
	} else {
		for r, err := range pl.filtered(pl.accessScan(ctx, pl.b, ex), keys, ft) {
			if err != nil {
				return 0, false, err
			}
			total.add(r)
		}
	}
	if at != nil {
		at.in.Add(total.count)
		at.out.Add(1)
		at.ns.Add(time.Since(start).Nanoseconds())
	}
	switch pl.q.Agg {
	case AggCount:
		return total.count, true, nil
	case AggMinTid:
		return total.min, total.found, nil
	default: // AggMaxTid
		return total.max, total.found, nil
	}
}

// RunAll compiles and executes several select queries against b
// concurrently, materializing each result — the planner's parallel subplan
// primitive. It powers the shard scatter internally and replaces the
// bespoke goroutine fan-out provquery's Mod wave scatter used to carry:
// callers hand the wave's region queries to the planner and get the
// region record sets back, each fetched through whatever access path its
// predicate admits. Results are positional; a compile error on any query
// fails the whole call before anything runs.
func RunAll(ctx context.Context, b provstore.Backend, qs ...*Query) ([][]provstore.Record, error) {
	return runAll(ctx, b, qs, nil)
}

func runAll(ctx context.Context, b provstore.Backend, qs []*Query, ex *exec) ([][]provstore.Record, error) {
	plans := make([]*Plan, len(qs))
	for i, q := range qs {
		pl, err := Compile(b, q)
		if err != nil {
			return nil, err
		}
		plans[i] = pl
	}
	out := make([][]provstore.Record, len(qs))
	err := provstore.Fanout(ctx, len(plans), func(i int) error {
		recs, rerr := provstore.CollectScan(plans[i].records(ctx, ex))
		out[i] = recs
		return rerr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
