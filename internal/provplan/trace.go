package provplan

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/path"
	"repro/internal/provstore"
)

// This file executes the paper's ancestry queries as plans: Trace is a
// chain of one select per step (loc <= cur, tid <= tnow, the hierarchical
// resolution access path), Mod is a BFS whose every wave is a batch of
// region selects run through the planner's parallel subplan path, and Hist
// and Src derive from Trace. The result types live here — provquery
// re-exports them — because the engine that computes a TraceResult is the
// plan layer, whichever side of a network connection it runs on.

// ErrBadTrace reports an inconsistent provenance store (a trace reached a
// location a transaction deleted).
var ErrBadTrace = errors.New("provplan: trace reached deleted data; provenance store is inconsistent")

// An Event is one step of a data item's history, in reverse chronological
// order: at the end of transaction Tid the data was at Loc; if Op is OpCopy
// it had just been copied from Src, if OpInsert it had just been created.
type Event struct {
	Tid int64
	Op  provstore.OpKind
	Loc path.Path
	Src path.Path // for copies
}

// String renders the event for human consumption.
func (ev Event) String() string {
	switch ev.Op {
	case provstore.OpCopy:
		return fmt.Sprintf("txn %d: copied %s ← %s", ev.Tid, ev.Loc, ev.Src)
	case provstore.OpInsert:
		return fmt.Sprintf("txn %d: inserted %s", ev.Tid, ev.Loc)
	default:
		return fmt.Sprintf("txn %d: %s %s", ev.Tid, ev.Op, ev.Loc)
	}
}

// A TraceResult is the full backward history of one location.
type TraceResult struct {
	// Events lists copy/insert steps, most recent first.
	Events []Event
	// Origin is how the chain ended.
	Origin Origin
	// External is the first location outside the traced database the
	// chain reached (set when Origin == OriginExternal).
	External path.Path
}

// Origin classifies how a trace ended.
type Origin int

// Trace chain endings.
const (
	// OriginInserted: the chain reached the transaction that inserted
	// the data.
	OriginInserted Origin = iota
	// OriginExternal: the chain left the traced database (the data was
	// copied from an external source whose provenance this store cannot
	// see — the paper's "partial answer").
	OriginExternal
	// OriginPreexisting: the chain ran past the oldest recorded
	// transaction; the data predates provenance tracking.
	OriginPreexisting
)

// String names the origin.
func (o Origin) String() string {
	switch o {
	case OriginInserted:
		return "inserted"
	case OriginExternal:
		return "external"
	case OriginPreexisting:
		return "preexisting"
	default:
		return fmt.Sprintf("Origin(%d)", int(o))
	}
}

// horizon resolves an ancestry plan's tnow: the pinned AsOf, or the
// store's newest transaction — resolved here, wherever the plan executes,
// so a delegated plan costs the client no extra round trip.
func (pl *Plan) horizon(ctx context.Context) (int64, error) {
	if pl.asOf > 0 {
		return pl.asOf, nil
	}
	return pl.b.MaxTid(ctx)
}

// effectiveAt resolves the effective record for loc in every transaction
// up to tnow from one compiled select: the plan's access path is the
// ancestor scan, its tid bound cuts the (Tid, Loc)-ordered stream at the
// horizon, and for each transaction the record with the longest Loc
// (nearest ancestor-or-self) governs. Hierarchical inference materializes
// on the way out: copies rebase, inserts/deletes retarget.
func effectiveAt(ctx context.Context, b provstore.Backend, loc path.Path, tnow int64, ex *exec) (map[int64]provstore.Record, error) {
	q := &Query{Op: OpSelect, Where: Pred{LocAbove: loc.String(), TidMax: tnow}}
	pl, err := Compile(b, q)
	if err != nil {
		return nil, err
	}
	out := make(map[int64]provstore.Record)
	for r, err := range pl.records(ctx, ex) {
		if err != nil {
			return nil, err
		}
		if prev, ok := out[r.Tid]; ok && prev.Loc.Len() >= r.Loc.Len() {
			continue
		}
		out[r.Tid] = r
	}
	for tid, r := range out {
		if r.Loc.Equal(loc) {
			continue
		}
		inf := provstore.Record{Tid: tid, Op: r.Op, Loc: loc}
		if r.Op == provstore.OpCopy {
			src, err := loc.Rebase(r.Loc, r.Src)
			if err != nil {
				return nil, err
			}
			inf.Src = src
		}
		out[tid] = inf
	}
	return out, nil
}

// runTrace computes the backward history of the plan's path as of its
// horizon. The context is observed between chain steps (each step is one
// select), so a trace over a slow or remote store can be cancelled.
func (pl *Plan) runTrace(ctx context.Context, ex *exec) (TraceResult, error) {
	var res TraceResult
	tnow, err := pl.horizon(ctx)
	if err != nil {
		return res, err
	}
	cur := pl.path
	eff, err := effectiveAt(ctx, pl.b, cur, tnow, ex.sub("step:"))
	if err != nil {
		return res, err
	}
	for t := tnow; t >= 1; t-- {
		rec, ok := eff[t]
		if !ok {
			continue // Unch(t, cur)
		}
		switch rec.Op {
		case provstore.OpInsert:
			res.Events = append(res.Events, Event{Tid: t, Op: provstore.OpInsert, Loc: cur})
			res.Origin = OriginInserted
			return res, nil
		case provstore.OpCopy:
			res.Events = append(res.Events, Event{Tid: t, Op: provstore.OpCopy, Loc: cur, Src: rec.Src})
			cur = rec.Src
			if cur.DB() != pl.path.DB() {
				// The chain leaves this database; without the source's
				// own provenance store the answer is necessarily
				// partial (§2.2).
				res.Origin = OriginExternal
				res.External = cur
				return res, nil
			}
			if eff, err = effectiveAt(ctx, pl.b, cur, tnow, ex.sub("step:")); err != nil {
				return res, err
			}
		case provstore.OpDelete:
			// Live data cannot trace through its own deletion.
			return res, fmt.Errorf("%w: %s deleted in txn %d", ErrBadTrace, cur, t)
		}
	}
	res.Origin = OriginPreexisting
	return res, nil
}

// runSrc answers which transaction first created the data at the plan's
// path: a trace plus the paper's getSrc verification probe against the
// store's effective record.
func (pl *Plan) runSrc(ctx context.Context, ex *exec) (int64, bool, error) {
	tr, err := pl.runTrace(ctx, ex)
	if err != nil {
		return 0, false, err
	}
	if tr.Origin != OriginInserted {
		return 0, false, nil
	}
	last := tr.Events[len(tr.Events)-1]
	rec, ok, err := provstore.Effective(ctx, pl.b, last.Tid, last.Loc)
	if err != nil {
		return 0, false, err
	}
	if !ok || rec.Op != provstore.OpInsert {
		return 0, false, fmt.Errorf("provplan: Src verification failed for %s at txn %d", last.Loc, last.Tid)
	}
	return last.Tid, true, nil
}

// runHist answers every transaction that copied the data at the plan's
// path, most recent first: the copy steps of the trace.
func (pl *Plan) runHist(ctx context.Context, ex *exec) ([]int64, error) {
	tr, err := pl.runTrace(ctx, ex)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, ev := range tr.Events {
		if ev.Op == provstore.OpCopy {
			out = append(out, ev.Tid)
		}
	}
	return out, nil
}

// region is a traced subtree with an upper transaction bound: records in
// the region count toward Mod only up to bound (data copied into the main
// region at transaction t came from the source region as of t-1; later
// changes to the source are irrelevant).
type region struct {
	prefix path.Path
	bound  int64
	key    string // binary encoding of prefix, computed once on enqueue
}

func newRegion(prefix path.Path, bound int64) region {
	return region{prefix: prefix, bound: bound, key: string(prefix.AppendBinary(nil))}
}

// runMod answers every transaction that created, modified or deleted data
// in the subtree at the plan's path, as of its horizon. The walk is the
// same BFS with per-location shadowing the paper's semantics dictate (see
// provquery's documentation of the algorithm); what the plan layer changes
// is the scatter: each wave's region scans are declarative selects — the
// subtree scan and the ancestor scan of each unique region prefix, with
// the region's tid bound pushed into the plan — executed through the
// planner's parallel subplan path (runAll), so a wave over a sharded or
// remote store overlaps all its scans without bespoke goroutine plumbing.
func (pl *Plan) runMod(ctx context.Context, ex *exec) ([]int64, error) {
	tnow, err := pl.horizon(ctx)
	if err != nil {
		return nil, err
	}
	result := make(map[int64]struct{})
	seen := make(map[string]int64) // region prefix -> highest bound processed
	queue := []region{newRegion(pl.path, tnow)}
	for len(queue) > 0 {
		// Cancellation is observed between BFS waves: an in-flight wave
		// completes (runAll joins its goroutines), then the walk stops
		// before the next one launches.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Drop regions an earlier wave already covered with a bound at
		// least as high, then plan one select pair per unique prefix.
		// Several bounds for one prefix share the scans of the highest
		// bound — the per-region filter below re-applies each bound.
		wave := queue[:0:0]
		for _, g := range queue {
			if prev, ok := seen[g.key]; ok && prev >= g.bound {
				continue
			}
			wave = append(wave, g)
		}
		queue = nil
		prefixes := make([]path.Path, 0, len(wave))
		scanIdx := make(map[string]int, len(wave))
		bounds := make([]int64, 0, len(wave))
		for _, g := range wave {
			if i, ok := scanIdx[g.key]; ok {
				if g.bound > bounds[i] {
					bounds[i] = g.bound
				}
				continue
			}
			scanIdx[g.key] = len(prefixes)
			prefixes = append(prefixes, g.prefix)
			bounds = append(bounds, g.bound)
		}

		// Scatter: two selects per unique prefix — records inside the
		// region and records at or above its prefix — bounded at the
		// prefix's highest wave bound.
		qs := make([]*Query, 0, 2*len(prefixes))
		for i, prefix := range prefixes {
			qs = append(qs,
				// The subtree scan keeps its access path's native
				// (Loc, Tid) order so it streams without a sort; the
				// gather re-sorts newest-first anyway.
				&Query{Op: OpSelect, Where: Pred{LocUnder: prefix.String(), TidMax: bounds[i]}, Order: OrderLocTid},
				&Query{Op: OpSelect, Where: Pred{LocAbove: prefix.String(), TidMax: bounds[i]}})
		}
		scans, err := runAll(ctx, pl.b, qs, ex.sub("wave:"))
		if err != nil {
			return nil, err
		}

		// Gather: merge sequentially in queue order (the shadow and seen
		// bookkeeping is order-sensitive).
		for _, g := range wave {
			if prev, ok := seen[g.key]; ok && prev >= g.bound {
				continue
			}
			seen[g.key] = g.bound

			i := scanIdx[g.key]
			inside, above := scans[2*i], scans[2*i+1]
			recs := make([]provstore.Record, 0, len(inside)+len(above))
			recs = append(recs, inside...)
			for _, r := range above {
				if !r.Loc.Equal(g.prefix) { // exact-loc records are in `inside`
					recs = append(recs, r)
				}
			}
			// Newest first; shadowed locations drop older records.
			sort.Slice(recs, func(i, j int) bool { return recs[i].Tid > recs[j].Tid })
			shadow := make(map[string]struct{})
			for _, r := range recs {
				if r.Tid > g.bound {
					continue
				}
				lk := string(r.Loc.AppendBinary(nil))
				if _, dead := shadow[lk]; dead {
					continue
				}
				shadow[lk] = struct{}{}
				ancestor := r.Loc.IsStrictPrefixOf(g.prefix)
				if ancestor && r.Op == provstore.OpInsert {
					// An insert at an ancestor creates an empty node: no
					// data at paths extending the region's prefix.
					continue
				}
				result[r.Tid] = struct{}{}
				if r.Op != provstore.OpCopy {
					continue
				}
				if ancestor {
					src, rerr := g.prefix.Rebase(r.Loc, r.Src)
					if rerr != nil {
						return nil, rerr
					}
					queue = append(queue, newRegion(src, r.Tid-1))
				} else {
					queue = append(queue, newRegion(r.Src, r.Tid-1))
				}
			}
		}
	}
	out := make([]int64, 0, len(result))
	for t := range result {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
