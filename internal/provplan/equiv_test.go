package provplan_test

// Cross-backend equivalence properties for the declarative layer, driven by
// the paper's own workload generator instead of hand-picked fixtures: a
// seeded §4.1 update mix is editor-applied over every backend shape, then
// every provenance question is answered twice — plan-compiled and through
// the legacy client-orchestrated code path — and the answers must be
// identical record for record. The same plans must also agree across all
// backends, pinning the remote and replicated stores to the in-memory
// reference. This is the external-package twin of plan_test.go's
// brute-force checks: that file proves plans against a naive evaluator on
// the mem shapes; this one proves plan-vs-legacy and backend-vs-backend on
// the full zoo, relational and networked stores included.

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"slices"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/path"
	"repro/internal/provhttp"
	"repro/internal/provplan"
	"repro/internal/provquery"
	"repro/internal/provstore"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/workload"
	"repro/internal/wrapper"
	"repro/internal/xmlstore"

	_ "repro/internal/provrepl" // registers the replicated:// driver
	_ "repro/internal/relprov"  // registers the rel:// driver
)

const (
	equivSeed = 42
	equivOps  = 160
)

// equivSequence generates the seeded update workload once; every backend
// replays the identical sequence, so their stores hold identical records.
func equivSequence(t *testing.T) update.Sequence {
	t.Helper()
	gen := workload.New(workload.Config{
		Pattern:    workload.Mix,
		Deletion:   workload.DelMix,
		Seed:       equivSeed,
		TargetName: "MiMI",
		SourceName: "OrganelleDB",
	}, equivTarget(), equivSource())
	return gen.Sequence(equivOps)
}

func equivTarget() *tree.Node {
	return dataset.GenMiMI(dataset.MiMIConfig{Entries: 12, MaxPTMs: 2, MaxCitations: 2, MaxInteracts: 2, Seed: 7})
}

func equivSource() *tree.Node {
	return dataset.GenOrganelleTree(dataset.OrganelleConfig{Proteins: 12, Seed: 8})
}

// equivBackendOpeners lists every backend shape under test: the in-memory
// reference, sharding, client-side batching, the file-backed relational
// store, the cpdb:// network client, and the replicated composite.
func equivBackendOpeners() map[string]func(t *testing.T) provstore.Backend {
	openDSN := func(dsn string) func(t *testing.T) provstore.Backend {
		return func(t *testing.T) provstore.Backend {
			b, err := provstore.OpenDSN(dsn)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { provstore.Close(b) }) //nolint:errcheck // test teardown
			return b
		}
	}
	return map[string]func(t *testing.T) provstore.Backend{
		"mem":      openDSN("mem://"),
		"sharded":  openDSN("mem://?shards=4"),
		"batching": func(t *testing.T) provstore.Backend { return provstore.NewBatching(provstore.NewMemBackend(), 8) },
		"rel": func(t *testing.T) provstore.Backend {
			return openDSN("rel://" + filepath.Join(t.TempDir(), "prov.rel") + "?create=1")(t)
		},
		"cpdb": func(t *testing.T) provstore.Backend {
			hs := httptest.NewServer(provhttp.NewServer(provstore.NewMemBackend()))
			t.Cleanup(hs.Close)
			return openDSN("cpdb://" + hs.Listener.Addr().String())(t)
		},
		"replicated": openDSN("replicated://?primary=mem://&replica=mem://&read=any"),
	}
}

// loadEquivWorkload replays the seeded workload into the backend through a
// real provenance-tracked editor (HierTrans, auto-commit every 5 ops, as in
// the experiments) and returns the query engine over the store.
func loadEquivWorkload(t *testing.T, b provstore.Backend, seq update.Sequence) *provquery.Engine {
	t.Helper()
	ed, err := core.NewEditor(core.Config{
		Target:          wrapper.NewXMLTarget(xmlstore.NewMem("MiMI", equivTarget())),
		Sources:         []wrapper.Source{wrapper.NewXMLTarget(xmlstore.NewMem("OrganelleDB", equivSource()))},
		Tracker:         provstore.MustNew(provstore.HierTrans, provstore.Config{Backend: b}),
		AutoCommitEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ed.ApplySequence(seq); err != nil {
		t.Fatal(err)
	}
	if _, err := ed.Commit(); err != nil && !errors.Is(err, provstore.ErrNoTxn) {
		t.Fatal(err)
	}
	return provquery.New(b)
}

// equivProbePaths derives the query targets from the store itself: a
// deterministic sample of stored locations and sources, their parents, and
// a few locations that were never touched.
func equivProbePaths(t *testing.T, b provstore.Backend) []path.Path {
	t.Helper()
	recs, err := provstore.CollectScan(b.ScanAll(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]path.Path{}
	for _, r := range recs {
		seen[r.Loc.String()] = r.Loc
		if p, err := r.Loc.Parent(); err == nil && !p.IsRoot() {
			seen[p.String()] = p
		}
		if r.Src.Len() > 0 {
			seen[r.Src.String()] = r.Src
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	// Every k-th location keeps the probe count bounded while the seed
	// varies which ones; plus paths no transaction ever touched.
	stride := max(1, len(keys)/24)
	var out []path.Path
	for i := 0; i < len(keys); i += stride {
		out = append(out, seen[keys[i]])
	}
	for _, absent := range []string{"MiMI", "MiMI/never/was", "Elsewhere/x"} {
		out = append(out, path.MustParse(absent))
	}
	return out
}

// TestPlanLegacyEquivalence is the headline property: on every backend
// shape, for a seeded editor workload, the plan-compiled Trace, Src, Hist
// and Mod answers are identical to the legacy client-orchestrated ones —
// at the present horizon and at a historical one.
func TestPlanLegacyEquivalence(t *testing.T) {
	seq := equivSequence(t)
	for name, open := range equivBackendOpeners() {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			e := loadEquivWorkload(t, open(t), seq)
			maxTid, err := e.MaxTid(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if maxTid < 4 {
				t.Fatalf("workload produced only %d transactions", maxTid)
			}
			probes := equivProbePaths(t, e.Backend())
			if len(probes) < 10 {
				t.Fatalf("only %d probe paths", len(probes))
			}
			// Probing a path that was deleted by the horizon is a legitimate
			// question with a defined error answer ("trace reached deleted
			// data"); equivalence then means both sides return that same
			// error.
			// A remote backend prefixes the same message with its transport
			// wrapper ("provhttp: server error (HTTP 500): …"), so compare
			// by suffix.
			sameErr := func(what string, p path.Path, horizon int64, err1, err2 error) bool {
				t.Helper()
				switch {
				case (err1 == nil) != (err2 == nil):
					t.Errorf("%s(%s, %d): plan err %v, legacy err %v", what, p, horizon, err1, err2)
				case err1 != nil && !strings.HasSuffix(err1.Error(), err2.Error()) && !strings.HasSuffix(err2.Error(), err1.Error()):
					t.Errorf("%s(%s, %d): plan err %v, legacy err %v", what, p, horizon, err1, err2)
				}
				return err1 == nil && err2 == nil
			}
			for _, horizon := range []int64{maxTid, maxTid / 2} {
				for _, p := range probes {
					gotTr, err1 := e.Trace(ctx, p, horizon)
					wantTr, err2 := e.LegacyTrace(ctx, p, horizon)
					if sameErr("Trace", p, horizon, err1, err2) && !reflect.DeepEqual(gotTr, wantTr) {
						t.Errorf("Trace(%s, %d):\nplan   %+v\nlegacy %+v", p, horizon, gotTr, wantTr)
					}

					gotTid, gotOK, err1 := e.Src(ctx, p, horizon)
					wantTid, wantOK, err2 := e.LegacySrc(ctx, p, horizon)
					if sameErr("Src", p, horizon, err1, err2) && (gotTid != wantTid || gotOK != wantOK) {
						t.Errorf("Src(%s, %d): plan (%d, %v), legacy (%d, %v)", p, horizon, gotTid, gotOK, wantTid, wantOK)
					}

					gotHist, err1 := e.Hist(ctx, p, horizon)
					wantHist, err2 := e.LegacyHist(ctx, p, horizon)
					if sameErr("Hist", p, horizon, err1, err2) && fmt.Sprint(gotHist) != fmt.Sprint(wantHist) {
						t.Errorf("Hist(%s, %d): plan %v, legacy %v", p, horizon, gotHist, wantHist)
					}

					gotMod, err1 := e.Mod(ctx, p, horizon)
					wantMod, err2 := e.LegacyMod(ctx, p, horizon)
					if sameErr("Mod", p, horizon, err1, err2) && fmt.Sprint(gotMod) != fmt.Sprint(wantMod) {
						t.Errorf("Mod(%s, %d): plan %v, legacy %v", p, horizon, gotMod, wantMod)
					}
				}
			}
		})
	}
}

// TestSelectPlansAgreeAcrossBackends runs a spread of declarative queries
// on every backend over the identical workload and requires each answer to
// match the in-memory reference exactly — rows, aggregates, scan results
// and all.
func TestSelectPlansAgreeAcrossBackends(t *testing.T) {
	queries := []string{
		"select",
		"select where op=C",
		"select where op=I,D order loc-tid",
		"select where loc>=MiMI limit 25",
		"select where tid=2..6 and src>=OrganelleDB",
		"select count where op=D",
		"select min-tid where op=C",
		"select max-tid",
		"select where tid>=3 join src-loc (select where op=C) order tid-loc desc limit 40",
	}
	seq := equivSequence(t)
	ctx := context.Background()

	reference := map[string]*provplan.Result{}
	openers := equivBackendOpeners()
	refEngine := loadEquivWorkload(t, openers["mem"](t), seq)
	for _, text := range queries {
		res, err := provplan.Collect(ctx, refEngine.Backend(), provplan.MustParse(text))
		if err != nil {
			t.Fatalf("mem: %s: %v", text, err)
		}
		res.Scanned = 0 // physical work differs by shape; answers must not
		reference[text] = res
	}

	for name, open := range openers {
		if name == "mem" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			e := loadEquivWorkload(t, open(t), seq)
			for _, text := range queries {
				res, err := provplan.Collect(ctx, e.Backend(), provplan.MustParse(text))
				if err != nil {
					t.Fatalf("%s: %v", text, err)
				}
				res.Scanned = 0
				if !reflect.DeepEqual(res, reference[text]) {
					t.Errorf("%s:\n%s   %+v\nmem  %+v", text, name, res, reference[text])
				}
			}
		})
	}
}
