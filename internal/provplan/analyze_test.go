package provplan

import (
	"context"
	"strings"
	"testing"

	"repro/internal/provstore"
)

// opMap indexes an Analysis by operator name.
func opMap(t *testing.T, az *Analysis) map[string]OpStat {
	t.Helper()
	if az == nil {
		t.Fatal("nil Analysis")
	}
	m := make(map[string]OpStat, len(az.Ops))
	for _, op := range az.Ops {
		if _, dup := m[op.Op]; dup {
			t.Fatalf("duplicate operator %q in analysis", op.Op)
		}
		m[op.Op] = op
	}
	return m
}

func findOp(t *testing.T, m map[string]OpStat, prefix string) OpStat {
	t.Helper()
	for name, op := range m {
		if strings.HasPrefix(name, prefix) {
			return op
		}
	}
	t.Fatalf("no operator with prefix %q in %v", prefix, m)
	return OpStat{}
}

func TestAnalyzeSelect(t *testing.T) {
	b := provstore.NewMemBackend()
	load(t, b)

	q := MustParse("select where loc>=T/c1")
	q.Analyze = true
	res, err := Collect(context.Background(), b, q)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	m := opMap(t, res.Analysis)

	access := findOp(t, m, "access:")
	filter := m["filter"]
	output := m["output"]
	if access.Out != filter.In {
		t.Errorf("access out %d != filter in %d", access.Out, filter.In)
	}
	if filter.Out != output.In {
		t.Errorf("filter out %d != output in %d", filter.Out, output.In)
	}
	if output.Out != int64(len(res.Records)) {
		t.Errorf("output out %d != %d records", output.Out, len(res.Records))
	}
	if res.Analysis.Scanned != res.Scanned {
		t.Errorf("analysis scanned %d != result scanned %d", res.Analysis.Scanned, res.Scanned)
	}
	if res.Scanned == 0 {
		t.Error("scanned = 0 for a non-empty select")
	}
}

func TestAnalyzeOffByDefault(t *testing.T) {
	b := provstore.NewMemBackend()
	load(t, b)

	res, err := Collect(context.Background(), b, MustParse("select where loc>=T"))
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if res.Analysis != nil {
		t.Fatalf("Analysis = %+v without Analyze", res.Analysis)
	}

	// The row stream must not carry an analyze trailer either.
	pl, err := Compile(b, MustParse("select where loc>=T"))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for row, err := range pl.Rows(context.Background()) {
		if err != nil {
			t.Fatalf("Rows: %v", err)
		}
		if row.Kind == RowAnalyze {
			t.Fatal("RowAnalyze emitted without Analyze")
		}
	}
}

func TestAnalyzeRowsTrailer(t *testing.T) {
	b := provstore.NewMemBackend()
	load(t, b)

	q := MustParse("select where op=i,c")
	q.Analyze = true
	pl, err := Compile(b, q)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var kinds []RowKind
	for row, err := range pl.Rows(context.Background()) {
		if err != nil {
			t.Fatalf("Rows: %v", err)
		}
		kinds = append(kinds, row.Kind)
	}
	if len(kinds) < 2 {
		t.Fatalf("got %d rows, want data rows plus trailer", len(kinds))
	}
	if kinds[len(kinds)-1] != RowAnalyze {
		t.Fatalf("last row kind = %v, want RowAnalyze", kinds[len(kinds)-1])
	}
	for _, k := range kinds[:len(kinds)-1] {
		if k == RowAnalyze {
			t.Fatal("RowAnalyze before end of stream")
		}
	}
}

func TestAnalyzeAggregate(t *testing.T) {
	b := provstore.NewMemBackend()
	load(t, b)

	q := MustParse("select count where loc>=T")
	q.Analyze = true
	res, err := Collect(context.Background(), b, q)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	m := opMap(t, res.Analysis)
	agg := findOp(t, m, "agg:")
	if agg.Out != 1 {
		t.Errorf("agg out = %d, want 1", agg.Out)
	}
	if agg.In != res.Value {
		t.Errorf("agg in = %d, want count value %d", agg.In, res.Value)
	}
}

func TestAnalyzeTraceSteps(t *testing.T) {
	b := provstore.NewMemBackend()
	load(t, b)

	q := MustParse("trace U/m")
	q.Analyze = true
	res, err := Collect(context.Background(), b, q)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(res.Trace.Events) == 0 {
		t.Fatal("empty trace")
	}
	m := opMap(t, res.Analysis)
	// Ancestry chain steps accumulate under the step: prefix.
	findOp(t, m, "step:")
	if res.Analysis.Scanned == 0 {
		t.Error("scanned = 0 for a trace")
	}
}

func TestAnalyzeJoinSub(t *testing.T) {
	b := provstore.NewMemBackend()
	load(t, b)

	q := MustParse("select where loc>=T join tid (select where op=c)")
	q.Analyze = true
	res, err := Collect(context.Background(), b, q)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	m := opMap(t, res.Analysis)
	jb := m["join-build"]
	if jb.In == 0 {
		t.Error("join-build saw no sub-plan rows")
	}
	// The subquery's own operators run under the sub: prefix.
	findOp(t, m, "sub:access:")
}

// Analyze is an execution flag, not query syntax: the canonical text form
// must not change, and the JSON wire form must carry it.
func TestAnalyzeNotInCanonicalForm(t *testing.T) {
	q := MustParse("select where loc>=T limit 3")
	plain := q.String()
	q.Analyze = true
	if got := q.String(); got != plain {
		t.Fatalf("String() changed with Analyze: %q vs %q", got, plain)
	}
	back, err := Parse(q.String())
	if err != nil {
		t.Fatalf("Parse(String()): %v", err)
	}
	if back.Analyze {
		t.Fatal("Analyze survived a text round trip; it must be wire-only")
	}
}
