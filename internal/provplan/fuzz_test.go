package provplan

import (
	"context"
	"testing"

	"repro/internal/provstore"
)

// FuzzParse hammers the query-language front end: for any input, Parse must
// return cleanly (never panic); for any input it accepts, the canonical
// String() form must re-parse to the identical canonical form (the
// fixed-point property every printed query relies on), and a query that
// also compiles must execute to completion against a small store without
// panicking — in-stream errors are fine, crashes are not.
//
// Run with: go test -fuzz FuzzParse -fuzztime 10s ./internal/provplan
func FuzzParse(f *testing.F) {
	// The documented grammar, seeded from the README and doc examples plus
	// each clause family, so the fuzzer starts from every production.
	for _, seed := range []string{
		"select",
		"select count",
		"select min-tid where op=C",
		"select max-tid where loc>=T/c1",
		"select where tid>=2 and tid<=4",
		"select where tid=3",
		"select where tid=2..6",
		"select where op=I,C and src>=S",
		"select where loc=T/c2/y and src=S/a",
		"select where loc<=T/c2/y",
		"select where loc>=MiMI limit 25",
		"select where tid>=3 join src-loc (select where op=C) order tid-loc desc limit 40",
		"select join tid (select where op=D)",
		"select join loc-src (select where loc>=T) order loc-tid",
		"trace T/c1/y",
		"trace T/c1/y asof 3",
		"mod T",
		"hist T/c2/y asof 5",
		"src T/c4/y",
		"",
		"select where",
		"select where tid=5..2",
		"trace",
		"plan select",
		"select limit 0",
		"select order sideways",
		"select where loc>=T//bad",
	} {
		f.Add(seed)
	}

	backend := provstore.NewMemBackend()
	if err := backend.Append(context.Background(), fixture()); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, text string) {
		q, err := Parse(text)
		if err != nil {
			return
		}
		canonical := q.String()
		q2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %q -> %q: %v", text, canonical, err)
		}
		if got := q2.String(); got != canonical {
			t.Fatalf("canonical form is not a fixed point: %q -> %q -> %q", text, canonical, got)
		}
		pl, err := Compile(backend, q)
		if err != nil {
			return
		}
		for range pl.Rows(context.Background()) {
			// Draining must not panic; row-level errors are legitimate
			// outcomes (e.g. a trace reaching deleted data).
		}
	})
}
