package provplan

import (
	"context"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"repro/internal/path"
	"repro/internal/provstore"
)

func rec(tid int64, op provstore.OpKind, loc string, src string) provstore.Record {
	r := provstore.Record{Tid: tid, Op: op, Loc: path.MustParse(loc)}
	if src != "" {
		r.Src = path.MustParse(src)
	}
	return r
}

// fixture is a small store with hierarchy, copies across subtrees and
// several transactions — enough to make every access path reachable.
func fixture() []provstore.Record {
	return []provstore.Record{
		rec(1, provstore.OpInsert, "T/c1", ""),
		rec(1, provstore.OpInsert, "T/c1/y", ""),
		rec(2, provstore.OpCopy, "T/c2", "S/a"),
		rec(2, provstore.OpCopy, "T/c2/x", "S/a/x"),
		rec(3, provstore.OpCopy, "T/c1/y", "T/c2/x"),
		rec(4, provstore.OpDelete, "T/c2/x", ""),
		rec(5, provstore.OpInsert, "T/c3", ""),
		rec(5, provstore.OpCopy, "T/c3/z", "T/c1/y"),
		rec(6, provstore.OpCopy, "U/m", "T/c3"),
		rec(7, provstore.OpInsert, "T/c1/y2", ""),
	}
}

func load(t *testing.T, b provstore.Backend) {
	t.Helper()
	if err := b.Append(context.Background(), fixture()); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

// naiveMatch re-states the predicate semantics independently of
// compiledPred, as the reference the planner is checked against.
func naiveMatch(q *Query, r provstore.Record) bool {
	w := q.Where
	if w.TidMin > 0 && r.Tid < w.TidMin {
		return false
	}
	if w.TidMax > 0 && r.Tid > w.TidMax {
		return false
	}
	if w.Ops != "" && !strings.ContainsRune(w.Ops, rune(r.Op)) {
		return false
	}
	if w.Loc != "" && !path.MustParsePattern(w.Loc).Matches(r.Loc) {
		return false
	}
	if w.LocUnder != "" && !path.MustParse(w.LocUnder).IsPrefixOf(r.Loc) {
		return false
	}
	if w.LocAbove != "" && !r.Loc.IsPrefixOf(path.MustParse(w.LocAbove)) {
		return false
	}
	if w.Src != "" && (r.Src.IsRoot() || !path.MustParsePattern(w.Src).Matches(r.Src)) {
		return false
	}
	if w.SrcUnder != "" && (r.Src.IsRoot() || !path.MustParse(w.SrcUnder).IsPrefixOf(r.Src)) {
		return false
	}
	return true
}

// naiveEval evaluates a select query by brute force over the record set.
func naiveEval(q *Query, all []provstore.Record) []provstore.Record {
	var out []provstore.Record
	for _, r := range all {
		if !naiveMatch(q, r) {
			continue
		}
		if q.Join != nil {
			sub := naiveEval(q.Join.Sub, all)
			on := q.Join.On
			if on == "" {
				on = JoinTid
			}
			hit := false
			for _, s := range sub {
				switch on {
				case JoinTid:
					hit = s.Tid == r.Tid
				case JoinSrcLoc:
					hit = !r.Src.IsRoot() && r.Src.Equal(s.Loc)
				case JoinLocSrc:
					hit = !s.Src.IsRoot() && r.Loc.Equal(s.Src)
				}
				if hit {
					break
				}
			}
			if !hit {
				continue
			}
		}
		out = append(out, r)
	}
	cmp := provstore.CompareTidLoc
	if q.Order == OrderLocTid {
		cmp = provstore.CompareLocTid
	}
	slices.SortStableFunc(out, cmp)
	if q.Desc {
		slices.Reverse(out)
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

func sameRecords(a, b []provstore.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if provstore.CompareTidLoc(a[i], b[i]) != 0 || a[i].Op != b[i].Op || !a[i].Src.Equal(b[i].Src) {
			return false
		}
	}
	return true
}

// backends returns the local backend fixtures select plans are checked on.
func backends(t *testing.T) map[string]provstore.Backend {
	t.Helper()
	return map[string]provstore.Backend{
		"mem":     provstore.NewMemBackend(),
		"sharded": provstore.NewShardedMem(4),
	}
}

// TestSeekKeyForTidRange pins the planner's keyset-seek trick: every stored
// location is strictly greater than path.Root under Compare, so the keys
// strictly after (N, Root) are exactly the records with Tid >= N. If a
// backend's ScanAllAfter ever disagreed, tid-range pushdown would silently
// drop the boundary transaction.
func TestSeekKeyForTidRange(t *testing.T) {
	for name, b := range backends(t) {
		load(t, b)
		all, err := provstore.CollectScan(b.ScanAll(context.Background()))
		if err != nil {
			t.Fatal(err)
		}
		for n := int64(1); n <= 8; n++ {
			got, err := provstore.CollectScan(b.ScanAllAfter(context.Background(), n, path.Root))
			if err != nil {
				t.Fatal(err)
			}
			var want []provstore.Record
			for _, r := range all {
				if r.Tid >= n {
					want = append(want, r)
				}
			}
			if !sameRecords(got, want) {
				t.Errorf("%s: ScanAllAfter(%d, Root) = %d records, want %d (Tid >= %d)", name, n, len(got), len(want), n)
			}
		}
	}
}

func TestAccessSelection(t *testing.T) {
	cases := []struct {
		text string
		want string // substring of Explain()[0]
	}{
		{"select", "access=scan-all "},
		{"select where tid>=3", "access=scan-all-after(3"},
		{"select where tid=3", "access=scan-tid(3)"},
		{"select where tid=3..5", "access=scan-all-after(3"},
		{"select where loc=T/c1/y", "access=scan-loc(T/c1/y)"},
		{"select where loc>=T/c2", "access=scan-loc-prefix(T/c2)"},
		{"select where loc=T/c2/*", "access=scan-loc-prefix(T/c2)"},
		{"select where loc=*/c2", "access=scan-all "},
		{"select where loc<=T/c2/x", "access=scan-loc-ancestors(T/c2/x)"},
		{"select where tid<=4", "stop=tid>4"},
		{"select count where tid>=2 and tid<=5", "agg=count"},
	}
	b := provstore.NewMemBackend()
	for _, tc := range cases {
		q, err := Parse(tc.text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.text, err)
		}
		pl, err := Compile(b, q)
		if err != nil {
			t.Fatalf("Compile(%q): %v", tc.text, err)
		}
		if got := pl.Explain()[0]; !strings.Contains(got, tc.want) {
			t.Errorf("Explain(%q) = %q, want substring %q", tc.text, got, tc.want)
		}
	}

	// The sharded scatter paths announce their parallelism.
	sb := provstore.NewShardedMem(4)
	pl, err := Compile(sb, MustParse("select where tid>=2"))
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Explain()[0]; !strings.Contains(got, "parallel=shards(4)") {
		t.Errorf("sharded Explain = %q, want parallel=shards(4)", got)
	}
}

// TestSelectQueries holds the planner answer-identical to brute force for a
// broad fixed set of queries, on single and sharded stores.
func TestSelectQueries(t *testing.T) {
	texts := []string{
		"select",
		"select where tid>=3",
		"select where tid<=3",
		"select where tid=2..5",
		"select where tid=5",
		"select where op=C",
		"select where op=I,D",
		"select where loc=T/c1/y",
		"select where loc>=T/c2",
		"select where loc<=T/c2/x",
		"select where loc=T/*",
		"select where loc=T/c2/*",
		"select where src>=S",
		"select where src=*/a/x",
		"select where op=C and tid>=3 and loc>=T",
		"select order loc-tid",
		"select desc",
		"select order loc-tid desc",
		"select limit 3",
		"select where tid>=2 limit 2",
		"select where op=C join tid (select where op=D)",
		"select where op=C join src-loc (select where tid<=2)",
		"select join loc-src (select where op=C)",
	}
	for name, b := range backends(t) {
		load(t, b)
		all := fixture()
		for _, text := range texts {
			q, err := Parse(text)
			if err != nil {
				t.Fatalf("Parse(%q): %v", text, err)
			}
			pl, err := Compile(b, q)
			if err != nil {
				t.Fatalf("Compile(%q): %v", text, err)
			}
			got, err := pl.Records(context.Background())
			if err != nil {
				t.Fatalf("%s: Records(%q): %v", name, text, err)
			}
			want := naiveEval(q, all)
			if !sameRecords(got, want) {
				t.Errorf("%s: %q:\n got %v\nwant %v", name, text, got, want)
			}
		}
	}
}

// TestRandomSelectEquivalence is the property test over random predicates:
// whatever the planner pushes down, results match brute force.
func TestRandomSelectEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	locs := []string{"T", "T/c1", "T/c1/y", "T/c2", "T/c2/x", "T/c3", "S/a", "U/m", "T/*", "T/c2/*", "*/c1/y"}
	var randQuery func(depth int) *Query
	randQuery = func(depth int) *Query {
		q := &Query{Op: OpSelect}
		if rng.Intn(2) == 0 {
			q.Where.TidMin = int64(1 + rng.Intn(8))
		}
		if rng.Intn(2) == 0 {
			q.Where.TidMax = q.Where.TidMin + int64(rng.Intn(8))
		}
		if rng.Intn(3) == 0 {
			q.Where.Ops = []string{"I", "C", "D", "IC", "ID", "CD"}[rng.Intn(6)]
		}
		switch rng.Intn(4) {
		case 0:
			q.Where.Loc = locs[rng.Intn(len(locs))]
		case 1:
			q.Where.LocUnder = locs[rng.Intn(8)]
		case 2:
			q.Where.LocAbove = locs[rng.Intn(8)]
		}
		if rng.Intn(4) == 0 {
			q.Where.SrcUnder = locs[rng.Intn(8)]
		}
		if rng.Intn(2) == 0 {
			q.Order = OrderLocTid
		}
		if rng.Intn(3) == 0 {
			q.Desc = true
		}
		if rng.Intn(3) == 0 {
			q.Limit = 1 + rng.Intn(5)
		}
		if depth > 0 && rng.Intn(3) == 0 {
			q.Join = &Join{
				On:  []string{JoinTid, JoinSrcLoc, JoinLocSrc}[rng.Intn(3)],
				Sub: randQuery(depth - 1),
			}
			q.Join.Sub.Limit = 0 // keep the reference's join semantics order-free
			q.Join.Sub.Desc = false
		}
		return q
	}
	for name, b := range backends(t) {
		load(t, b)
		all := fixture()
		for i := 0; i < 300; i++ {
			q := randQuery(1)
			pl, err := Compile(b, q)
			if err != nil {
				t.Fatalf("Compile(%v): %v", q, err)
			}
			got, err := pl.Records(context.Background())
			if err != nil {
				t.Fatalf("%s: %q: %v", name, q, err)
			}
			want := naiveEval(q, all)
			if !sameRecords(got, want) {
				t.Errorf("%s: %q:\n got %v\nwant %v", name, q, got, want)
			}
			// The canonical text form reproduces the query.
			rt, err := Parse(q.String())
			if err != nil {
				t.Fatalf("Parse(String(%q)): %v", q, err)
			}
			if rt.String() != q.String() {
				t.Errorf("round trip: %q != %q", rt.String(), q.String())
			}
		}
	}
}

func TestAggregates(t *testing.T) {
	cases := []struct {
		text  string
		val   int64
		found bool
	}{
		{"select count", 10, true},
		{"select count where op=C", 5, true},
		{"select count where tid=2..4", 4, true},
		{"select min-tid where loc>=T/c2", 2, true},
		{"select max-tid where loc>=T/c1", 7, true},
		{"select min-tid where tid>=9", 0, false},
		{"select count where tid>=9", 0, true},
		{"select max-tid where src>=S", 2, true},
	}
	for name, b := range backends(t) {
		load(t, b)
		for _, tc := range cases {
			res, err := Collect(context.Background(), b, MustParse(tc.text))
			if err != nil {
				t.Fatalf("%s: %q: %v", name, tc.text, err)
			}
			if res.Value != tc.val || res.Found != tc.found {
				t.Errorf("%s: %q = (%d, %v), want (%d, %v)", name, tc.text, res.Value, res.Found, tc.val, tc.found)
			}
		}
	}
}

// TestPushdownScansLess is the point of the planner: the pushed-down plan
// must pull strictly fewer records off the store than the full scan.
func TestPushdownScansLess(t *testing.T) {
	b := provstore.NewMemBackend()
	load(t, b)
	q := MustParse("select where loc>=T/c2 and tid<=3")
	down, err := Collect(context.Background(), b, q)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := CompileWith(b, q, Options{NoPushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := pl.Records(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(down.Records, full) {
		t.Fatalf("pushdown changed results: %v vs %v", down.Records, full)
	}
	if down.Scanned >= int64(len(fixture())) {
		t.Errorf("pushdown scanned %d of %d records; expected fewer", down.Scanned, len(fixture()))
	}
}

// TestEarlyStopReleasesCursor verifies the tid upper bound cuts the stream:
// with a limit-1 plan over an ordered access path, iteration stops after
// one yield without draining the backend cursor.
func TestEarlyStopReleasesCursor(t *testing.T) {
	b := provstore.NewMemBackend()
	load(t, b)
	res, err := Collect(context.Background(), b, MustParse("select where tid<=1"))
	if err != nil {
		t.Fatal(err)
	}
	// tid<=1 matches 2 records; the early stop sees one record past the
	// bound (tid 2) and cuts. Without the stop it would scan all 10.
	if res.Scanned > 3 {
		t.Errorf("early stop pulled %d records, want <= 3", res.Scanned)
	}
	if len(res.Records) != 2 {
		t.Errorf("got %d records, want 2", len(res.Records))
	}
}

func TestCompileErrors(t *testing.T) {
	b := provstore.NewMemBackend()
	bad := []*Query{
		{Op: "frobnicate"},
		{Op: OpSelect, Where: Pred{Ops: "X"}},
		{Op: OpSelect, Where: Pred{TidMin: 5, TidMax: 2}},
		{Op: OpSelect, Where: Pred{Loc: "T//x"}},
		{Op: OpSelect, Agg: "sum"},
		{Op: OpSelect, Agg: AggCount, Limit: 3},
		{Op: OpSelect, Order: "sideways"},
		{Op: OpSelect, Join: &Join{On: "bogus", Sub: &Query{Op: OpSelect}}},
		{Op: OpSelect, Join: &Join{}},
		{Op: OpSelect, Join: &Join{Sub: &Query{Op: OpTrace, Path: "T"}}},
		{Op: OpTrace},
		{Op: OpTrace, Path: "a//b"},
		nil,
	}
	for _, q := range bad {
		if _, err := Compile(b, q); err == nil {
			t.Errorf("Compile(%v): expected error", q)
		}
	}
}

// TestCancellation: a cancelled context surfaces as the in-stream error of
// a running plan.
func TestCancellation(t *testing.T) {
	for name, b := range backends(t) {
		load(t, b)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Collect(ctx, b, MustParse("select")); err == nil {
			t.Errorf("%s: expected error from cancelled select", name)
		}
		if _, err := Collect(ctx, b, MustParse("mod T/c1")); err == nil {
			t.Errorf("%s: expected error from cancelled mod", name)
		}
	}
}
