package provplan

import (
	"context"
	"strconv"
	"time"

	"repro/internal/provtrace"
)

// Distributed tracing of plan execution reuses the Analyze taps: when a
// trace recorder is installed on the context, Rows/Collect run with the
// analyzer enabled even outside analyze mode, and when the plan finishes
// each measured operator is emitted as one span under the plan's span —
// EXPLAIN ANALYZE and tracing share a single instrumentation point, so
// their numbers can never disagree. Operator spans carry the tap's
// cumulative producer time; concurrent branches (shard streams, BFS waves)
// share one tap, so sibling spans may overlap the plan span rather than
// partition it — self-time math clamps accordingly (see provtrace.Node).

// planSpan opens the plan-level span (nil when tracing is off) and hands
// back the context operators should run under.
func planSpan(ctx context.Context, op string) (context.Context, *provtrace.Span) {
	if !provtrace.Active(ctx) {
		return ctx, nil
	}
	return provtrace.Start(ctx, "plan:"+op)
}

// finishPlanSpan emits one span per measured operator and closes the plan
// span. Operator spans start at the plan span's start: the taps measure
// duration, not placement.
func finishPlanSpan(ctx context.Context, sp *provtrace.Span, az *analyzer, scanned int64) {
	if sp == nil {
		return
	}
	if az != nil {
		for _, op := range az.analysis(0).Ops {
			provtrace.Emit(ctx, "op:"+op.Op, sp.Start, time.Duration(op.NS),
				provtrace.Attr{K: "in", V: strconv.FormatInt(op.In, 10)},
				provtrace.Attr{K: "out", V: strconv.FormatInt(op.Out, 10)})
		}
	}
	sp.SetAttr("scanned", strconv.FormatInt(scanned, 10))
	sp.End()
}
