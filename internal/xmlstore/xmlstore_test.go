package xmlstore

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/figures"
	"repro/internal/path"
	"repro/internal/tree"
)

func TestMemStoreBasics(t *testing.T) {
	s := NewMem("T", figures.T0())
	if s.Name() != "T" {
		t.Error("Name wrong")
	}
	n, err := s.Get(path.MustParse("T/c1/y"))
	if err != nil || n.Value() != "3" {
		t.Fatalf("Get = %v, %v", n, err)
	}
	if !s.Has(path.MustParse("T/c5")) || s.Has(path.MustParse("T/zz")) {
		t.Error("Has wrong")
	}
	if s.NodeCount() != 7 { // root + c1{x,y} + c5{x,y}
		t.Errorf("NodeCount = %d", s.NodeCount())
	}
	if s.ByteSize() <= 0 {
		t.Error("ByteSize should be positive")
	}
	// Wrong database name rejected.
	if _, err := s.Get(path.MustParse("S1/a1")); err == nil {
		t.Error("foreign path should error")
	}
	// Get returns a copy.
	n.SetValue("999")
	n2, _ := s.Get(path.MustParse("T/c1/y"))
	if n2.Value() != "3" {
		t.Error("Get aliased internal state")
	}
}

func TestStoreUpdates(t *testing.T) {
	s := NewMem("T", figures.T0())
	rev := s.Revision()
	if err := s.Insert(path.MustParse("T"), "c9", nil); err != nil {
		t.Fatal(err)
	}
	if s.Revision() <= rev {
		t.Error("revision must advance")
	}
	if err := s.Insert(path.MustParse("T"), "c9", nil); err == nil {
		t.Error("duplicate insert should error")
	}
	if err := s.Insert(path.MustParse("T/zzz"), "x", nil); err == nil {
		t.Error("insert under missing parent should error")
	}
	if err := s.Insert(path.MustParse("T"), "bad", tree.Build(tree.M{"k": 1})); err == nil {
		t.Error("interior value should error")
	}
	if err := s.Insert(path.MustParse("T/c9"), "leaf", tree.NewLeaf("v")); err != nil {
		t.Fatal(err)
	}
	// Paste over an existing node and into a fresh label.
	sub := tree.Build(tree.M{"x": 7})
	if err := s.Paste(path.MustParse("T/c1"), sub); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(path.MustParse("T/c1"))
	if !got.Equal(sub) {
		t.Error("paste did not replace")
	}
	if err := s.Paste(path.MustParse("T/new"), sub); err != nil {
		t.Fatal(err)
	}
	if err := s.Paste(path.MustParse("T"), sub); err == nil {
		t.Error("paste over root should error")
	}
	if err := s.Paste(path.MustParse("T/a/b/c"), sub); err == nil {
		t.Error("paste under missing parent should error")
	}
	// Paste clones.
	sub.RemoveChild("x")
	if !s.Has(path.MustParse("T/new/x")) {
		t.Error("paste aliased the subtree")
	}
	// Delete.
	if err := s.Delete(path.MustParse("T/c5")); err != nil {
		t.Fatal(err)
	}
	if s.Has(path.MustParse("T/c5/x")) {
		t.Error("delete left subtree")
	}
	if err := s.Delete(path.MustParse("T/c5")); err == nil {
		t.Error("double delete should error")
	}
	if err := s.Delete(path.MustParse("T")); err == nil {
		t.Error("deleting root should error")
	}
}

func TestStorePersistence(t *testing.T) {
	file := filepath.Join(t.TempDir(), "t.xdb")
	s, err := Create("T", file, figures.T0())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(path.MustParse("T"), "added", tree.NewLeaf("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed store rejects everything.
	if _, err := s.Get(path.MustParse("T/c1")); !errors.Is(err, ErrClosed) {
		t.Errorf("closed Get: %v", err)
	}
	if err := s.Insert(path.MustParse("T"), "x", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("closed Insert: %v", err)
	}

	s2, err := Open("T", file)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, err := s2.Get(path.MustParse("T/added"))
	if err != nil || n.Value() != "1" {
		t.Fatalf("reopened Get = %v, %v", n, err)
	}
	want := figures.T0()
	want.AddChild("added", tree.NewLeaf("1"))
	if !s2.Snapshot().Equal(want) {
		t.Error("reopened snapshot mismatch")
	}
	if _, err := Open("T", filepath.Join(t.TempDir(), "missing.xdb")); err == nil {
		t.Error("opening missing file should error")
	}
}

func TestStoreXMLRoundTrip(t *testing.T) {
	s := NewMem("T", figures.T0())
	data, err := s.ExportXML()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewMem("T", nil)
	if err := s2.ImportXML(data); err != nil {
		t.Fatal(err)
	}
	if !s2.Snapshot().Equal(figures.T0()) {
		t.Error("XML round trip mismatch")
	}
	if err := s2.ImportXML([]byte("<bad")); err == nil {
		t.Error("bad XML should error")
	}
}

// TestStoreRunsFigure3 drives the Figure 3 script through the store's
// update surface and checks the result equals T'.
func TestStoreRunsFigure3(t *testing.T) {
	target := NewMem("T", figures.T0())
	sources := map[string]*Store{
		"S1": NewMem("S1", figures.S1()),
		"S2": NewMem("S2", figures.S2()),
	}
	// Drive the script manually through the store surface (the wrapper
	// layer automates this; the point here is the store API itself).
	p := path.MustParse
	steps := []func() error{
		func() error { return target.Delete(p("T/c5")) },
		func() error {
			n, err := sources["S1"].Get(p("S1/a1/y"))
			if err != nil {
				return err
			}
			return target.Paste(p("T/c1/y"), n)
		},
		func() error { return target.Insert(p("T"), "c2", nil) },
		func() error {
			n, err := sources["S1"].Get(p("S1/a2"))
			if err != nil {
				return err
			}
			return target.Paste(p("T/c2"), n)
		},
		func() error { return target.Insert(p("T/c2"), "y", nil) },
		func() error {
			n, err := sources["S2"].Get(p("S2/b3/y"))
			if err != nil {
				return err
			}
			return target.Paste(p("T/c2/y"), n)
		},
		func() error {
			n, err := sources["S1"].Get(p("S1/a3"))
			if err != nil {
				return err
			}
			return target.Paste(p("T/c3"), n)
		},
		func() error { return target.Insert(p("T"), "c4", nil) },
		func() error {
			n, err := sources["S2"].Get(p("S2/b2"))
			if err != nil {
				return err
			}
			return target.Paste(p("T/c4"), n)
		},
		func() error { return target.Insert(p("T/c4"), "y", tree.NewLeaf("12")) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i+1, err)
		}
	}
	if !target.Snapshot().Equal(figures.TPrime()) {
		t.Errorf("result != T':\n%s", target.Snapshot())
	}
}
