package xmlstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/figures"
	"repro/internal/path"
	"repro/internal/tree"
)

// TestStoreConcurrent exercises the store under one writer and parallel
// readers (run with -race).
func TestStoreConcurrent(t *testing.T) {
	s := NewMem("T", figures.T0())
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: grows and shrinks a private region.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			label := fmt.Sprintf("w%d", i)
			if err := s.Insert(path.MustParse("T"), label, tree.NewLeaf("v")); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if i%2 == 0 {
				if err := s.Delete(path.MustParse("T").Child(label)); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}
		close(stop)
	}()

	// Readers over the stable region.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if n, err := s.Get(path.MustParse("T/c1/x")); err != nil || n.Value() != "1" {
					t.Errorf("reader: %v, %v", n, err)
					return
				}
				s.Has(path.MustParse("T/c5"))
				s.NodeCount()
				_ = s.Snapshot()
				s.Revision()
			}
		}()
	}
	wg.Wait()
	// Net effect of the writer: odd-numbered labels survive.
	if !s.Has(path.MustParse("T/w1")) || s.Has(path.MustParse("T/w0")) {
		t.Error("writer results wrong")
	}
}
