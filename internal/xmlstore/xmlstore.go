// Package xmlstore is a native tree (XML) database standing in for Timber,
// the store hosting the paper's target database MiMI. It keeps the canonical
// tree in memory — the paper's working set also fit in RAM — and persists it
// to disk in the canonical binary tree encoding, with XML import/export for
// interchange.
//
// The store exposes exactly the update surface the CPDB wrapper needs
// (Figure 6): node lookup, insert of an empty/leaf node, subtree delete, and
// subtree paste, all addressed by paths.
package xmlstore

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/path"
	"repro/internal/tree"
)

// Errors returned by the store.
var (
	ErrClosed = errors.New("xmlstore: store is closed")
)

// A Store is one named tree database.
type Store struct {
	mu     sync.RWMutex
	name   string
	root   *tree.Node
	file   string // "" for purely in-memory stores
	closed bool
	// revision counts applied updates, for cheap change detection.
	revision int64
}

// NewMem creates an in-memory store with the given database name and
// initial content (nil means empty). The initial tree is cloned.
func NewMem(name string, initial *tree.Node) *Store {
	if initial == nil {
		initial = tree.NewTree()
	}
	return &Store{name: name, root: initial.Clone()}
}

// Create creates a store persisted at file, with initial content.
func Create(name, file string, initial *tree.Node) (*Store, error) {
	s := NewMem(name, initial)
	s.file = file
	if err := s.Save(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads a store previously saved to file.
func Open(name, file string) (*Store, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	root, err := tree.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("xmlstore: loading %s: %w", file, err)
	}
	return &Store{name: name, root: root, file: file}, nil
}

// Name returns the database name (the first path component addressing it).
func (s *Store) Name() string { return s.name }

// Revision returns a counter incremented by every successful update.
func (s *Store) Revision() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.revision
}

// Save persists the tree to the store's file (a no-op for in-memory
// stores). The write is atomic: a temp file is renamed over the target.
func (s *Store) Save() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if s.file == "" {
		return nil
	}
	tmp := s.file + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.root.WriteBinary(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, s.file)
}

// Close saves (if file-backed) and marks the store closed.
func (s *Store) Close() error {
	if err := s.Save(); err != nil {
		return err
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// rel converts an absolute path (beginning with the store's name) to a
// store-relative path.
func (s *Store) rel(p path.Path) (path.Path, error) {
	if p.IsRoot() {
		return path.Root, nil
	}
	if p.DB() != s.name {
		return path.Root, fmt.Errorf("xmlstore: path %q does not address database %q", p, s.name)
	}
	return p.TrimPrefix(path.New(s.name))
}

// Get returns a deep copy of the subtree at the absolute path p (or the
// whole database for the path naming just the store).
func (s *Store) Get(p path.Path) (*tree.Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	rp, err := s.rel(p)
	if err != nil {
		return nil, err
	}
	n, err := s.root.Get(rp)
	if err != nil {
		return nil, err
	}
	return n.Clone(), nil
}

// Has reports whether the absolute path exists.
func (s *Store) Has(p path.Path) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	rp, err := s.rel(p)
	if err != nil {
		return false
	}
	return s.root.Has(rp)
}

// Snapshot returns a deep copy of the entire database tree.
func (s *Store) Snapshot() *tree.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.root.Clone()
}

// NodeCount returns the number of nodes in the database, including the
// root.
func (s *Store) NodeCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.root.Size()
}

// ByteSize returns the canonical encoded size of the database.
func (s *Store) ByteSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.root.EncodedSize()
}

// Insert adds the edge {label: value} under the node at absolute path p;
// value must be nil (empty tree) or a leaf.
func (s *Store) Insert(p path.Path, label string, value *tree.Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	rp, err := s.rel(p)
	if err != nil {
		return err
	}
	parent, err := s.root.Get(rp)
	if err != nil {
		return err
	}
	if value == nil {
		value = tree.NewTree()
	}
	if !value.IsLeaf() && value.NumChildren() > 0 {
		return fmt.Errorf("xmlstore: insert value must be a data value or empty tree")
	}
	if err := parent.AddChild(label, value.Clone()); err != nil {
		return err
	}
	s.revision++
	return nil
}

// Delete removes the node at the absolute path p (and its subtree).
func (s *Store) Delete(p path.Path) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	rp, err := s.rel(p)
	if err != nil {
		return err
	}
	if rp.IsRoot() {
		return fmt.Errorf("xmlstore: cannot delete the database root")
	}
	parent, err := s.root.Get(rp.MustParent())
	if err != nil {
		return err
	}
	if err := parent.RemoveChild(rp.Base()); err != nil {
		return err
	}
	s.revision++
	return nil
}

// Paste replaces (or creates) the node at absolute path p with a deep copy
// of subtree; p's parent must exist.
func (s *Store) Paste(p path.Path, subtree *tree.Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	rp, err := s.rel(p)
	if err != nil {
		return err
	}
	if rp.IsRoot() {
		return fmt.Errorf("xmlstore: cannot paste over the database root")
	}
	parent, err := s.root.Get(rp.MustParent())
	if err != nil {
		return err
	}
	if err := parent.SetChild(rp.Base(), subtree.Clone()); err != nil {
		return err
	}
	s.revision++
	return nil
}

// ImportXML replaces the store contents with the tree decoded from an XML
// document produced by ExportXML.
func (s *Store) ImportXML(data []byte) error {
	_, root, err := tree.UnmarshalXML(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.root = root
	s.revision++
	return nil
}

// ExportXML renders the database as an XML document.
func (s *Store) ExportXML() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	return tree.MarshalXML(s.name, s.root)
}
