package provobs

import (
	"math"
	"sync/atomic"
)

// The histogram is log-bucketed with histSub sub-buckets per power of two:
// bucket i covers values in (2^((i-1)/histSub), 2^(i/histSub)]. Eight
// sub-buckets per octave bound the relative quantile error at 2^(1/8)
// (about +9%) — tight enough for p50/p95/p99 latency columns — while an
// Observe stays two atomic adds and an integer log: no locks, no floats on
// the hot path until the value leaves the first 64 exact buckets.
const (
	histSub     = 8
	histBuckets = 64 * histSub // covers every positive int64
)

// A Histogram records a distribution of non-negative int64 observations
// (durations in nanoseconds, stream sizes in records) in log-spaced
// buckets. It is safe for concurrent use; Observe never blocks. Use a
// Registry to expose one, or NewHistogram for a standalone measurement
// (the bench sweeps).
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64
	bucket [histBuckets]atomic.Int64
	ex     atomic.Pointer[exemplarSet] // allocated on first ObserveExemplar
}

// An Exemplar links one observation in a bucket to the trace that produced
// it — how a p99 /metrics bucket points straight at a stored span tree.
type Exemplar struct {
	TraceID string
	Value   int64 // the raw observed value
}

// exemplarSet holds the latest exemplar per bucket. It is allocated lazily
// so histograms on untraced deployments pay one nil pointer, not 512.
type exemplarSet struct {
	slot [histBuckets]atomic.Pointer[Exemplar]
}

// NewHistogram returns an unregistered histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket: the smallest i with
// upperBound(i) >= v. Values <= 1 land in bucket 0.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := int(math.Ceil(math.Log2(float64(v)) * histSub))
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// upperBound returns bucket i's inclusive upper bound in raw units.
func upperBound(i int) float64 {
	return math.Pow(2, float64(i)/histSub)
}

// Observe records one value. Negative values clamp to zero (they would be
// a caller bug — a wall clock running backwards — not worth failing over).
// Count is written before the bucket so a concurrent Snapshot never sees
// more bucketed observations than its Count — which keeps the exposed
// cumulative buckets monotone up to the +Inf (= Count) sample.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.bucket[bucketIndex(v)].Add(1)
}

// ObserveExemplar records one value and, when traceID is non-empty, tags
// the value's bucket with a {trace_id} exemplar (last writer wins — the
// freshest trace is the most likely to still be in the ring buffer). With
// an empty traceID it is exactly Observe.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	es := h.ex.Load()
	if es == nil {
		es = new(exemplarSet)
		if !h.ex.CompareAndSwap(nil, es) {
			es = h.ex.Load()
		}
	}
	es.slot[bucketIndex(v)].Store(&Exemplar{TraceID: traceID, Value: v})
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values, in raw units.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// A HistSnapshot is a point-in-time copy of a histogram, safe to quantile
// and render without racing further observations. Buckets copied while
// writers run may briefly disagree with Count by the in-flight
// observations; the snapshot is internally consistent enough for
// monitoring (each bucket value is a real count that was current when
// copied).
type HistSnapshot struct {
	Count     int64
	Sum       int64
	Bucket    [histBuckets]int64
	Exemplars []*Exemplar // per-bucket, nil when the series has none
}

// Snapshot copies the histogram's current state. Buckets load before
// Count (and Observe writes them in the opposite order), so Count is
// always >= the bucket total: the exposed cumulative series stays monotone.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.bucket {
		s.Bucket[i] = h.bucket[i].Load()
	}
	if es := h.ex.Load(); es != nil {
		s.Exemplars = make([]*Exemplar, histBuckets)
		for i := range es.slot {
			s.Exemplars[i] = es.slot[i].Load()
		}
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of the
// observed distribution, in raw units: the upper bound of the first bucket
// whose cumulative count reaches ceil(q * total). The estimate is within a
// factor of 2^(1/8) above a true order-statistic quantile. Returns 0 for
// an empty histogram.
func (s *HistSnapshot) Quantile(q float64) float64 {
	total := int64(0)
	for _, c := range s.Bucket {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range s.Bucket {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 1 // bucket 0 holds values <= 1
			}
			return upperBound(i)
		}
	}
	return upperBound(histBuckets - 1)
}
