package provobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Request tracing: the cpdb:// client stamps every round trip with a
// 16-hex-character trace id (the X-Cpdb-Trace-Id header); the server puts
// it into the request context, so it flows through the backend chain — a
// chained daemon's outgoing client reuses it — and into the structured
// request log on every hop. The id is correlation-only: random, unordered,
// carrying no information beyond identity.

// ctxKeyTraceID keys the trace id in a context.
type ctxKeyTraceID struct{}

// NewTraceID returns a fresh 16-hex-character request trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant id keeps
		// requests flowing (correlation degrades, nothing else does).
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithTraceID returns ctx carrying the trace id.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyTraceID{}, id)
}

// TraceID returns the context's trace id, or "" when none is set.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyTraceID{}).(string)
	return id
}
