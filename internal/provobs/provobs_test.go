package provobs

import (
	"context"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// relErr is the documented quantile overestimate bound: one sub-bucket.
var relErr = math.Pow(2, 1.0/histSub)

func TestBucketIndexBounds(t *testing.T) {
	vals := []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 100, 1023, 1024, 1025,
		1_000_000, 123_456_789, math.MaxInt64 / 2, math.MaxInt64}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if ub := upperBound(i); ub < float64(v)*(1-1e-9) {
			t.Errorf("bucketIndex(%d) = %d but upperBound %g < value", v, i, ub)
		}
		if v > 1 && i > 0 {
			if lb := upperBound(i - 1); lb >= float64(v)*(1+1e-9) {
				t.Errorf("value %d landed in bucket %d but previous bound %g already covers it", v, i, lb)
			}
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(-5); got != 0 {
		t.Errorf("bucketIndex(-5) = %d, want 0", got)
	}
}

// TestQuantileAgainstReference checks histogram quantiles against the exact
// order statistic of the observed values: the estimate must be >= the true
// quantile and within one sub-bucket (factor 2^(1/8)) above it.
func TestQuantileAgainstReference(t *testing.T) {
	// Deterministic pseudo-random values spanning several octaves.
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	h := NewHistogram()
	vals := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// 1 .. ~16M, log-uniform-ish: a mantissa shifted by a random octave.
		v := int64(next()%1000+1) << (next() % 15)
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0} {
		rank := int(math.Ceil(q * float64(len(vals))))
		ref := float64(vals[rank-1])
		est := s.Quantile(q)
		if est < ref*(1-1e-9) {
			t.Errorf("q=%g: estimate %g below true quantile %g", q, est, ref)
		}
		if est > ref*relErr*(1+1e-9) {
			t.Errorf("q=%g: estimate %g exceeds true quantile %g by more than %g", q, est, ref, relErr)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	h := NewHistogram()
	h.Observe(0)
	h.Observe(1)
	s := h.Snapshot()
	if got := s.Quantile(1.0); got != 1 {
		t.Errorf("Quantile(1.0) over bucket-0 values = %g, want 1", got)
	}
}

// TestConcurrentUpdates hammers a counter, gauge and histogram from many
// goroutines; exact totals must survive, and -race must stay quiet.
func TestConcurrentUpdates(t *testing.T) {
	const workers = 8
	const perWorker = 2000
	r := NewRegistry()
	c := r.Counter("cpdb_test_ops_total", "ops")
	g := r.Gauge("cpdb_test_level", "level")
	h := r.Histogram("cpdb_test_size", "sizes", UnitCount)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(w*perWorker + i))
				// Interleave snapshots with writers: cumulative buckets
				// must never exceed Count (exposition monotonicity).
				if i%500 == 0 {
					s := h.Snapshot()
					total := int64(0)
					for _, b := range s.Bucket {
						total += b
					}
					if total > s.Count {
						t.Errorf("snapshot bucket total %d > count %d", total, s.Count)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Load(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	total := int64(0)
	for _, b := range s.Bucket {
		total += b
	}
	if total != s.Count {
		t.Errorf("bucket total %d != count %d after quiesce", total, s.Count)
	}
}

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf)$`)

// parseExposition parses Prometheus text output, failing the test on any
// malformed line, and returns sample-name → count of samples.
func parseExposition(t *testing.T, text string) map[string]int {
	t.Helper()
	seen := make(map[string]struct{})
	counts := make(map[string]int)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line: %q", line)
		}
		full := m[1] + m[2]
		if _, dup := seen[full]; dup {
			t.Fatalf("duplicate sample: %q", full)
		}
		seen[full] = struct{}{}
		counts[m[1]]++
	}
	return counts
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpdb_requests_total", "Requests served.")
	r.Counter("cpdb_errors_total", "Errors.", WithLabel("endpoint", "scan/all"))
	g := r.Gauge("cpdb_cursors_open", "Open cursors.")
	h := r.Histogram("cpdb_request_duration_seconds", "Latency.",
		UnitSeconds, WithLabel("endpoint", "query"))
	r.Histogram("cpdb_request_duration_seconds", "Latency.",
		UnitSeconds, WithLabel("endpoint", "append"))
	c.Add(7)
	g.Set(2)
	h.Observe(1_000_000_000) // 1s
	h.Observe(2_000_000_000) // 2s

	var b strings.Builder
	WritePrometheus(&b, r, nil)
	out := b.String()
	counts := parseExposition(t, out)

	if counts["cpdb_requests_total"] != 1 || counts["cpdb_errors_total"] != 1 {
		t.Errorf("counter sample counts wrong: %v", counts)
	}
	// The unobserved "append" histogram still carries bucket 0 plus +Inf.
	if counts["cpdb_request_duration_seconds_bucket"] < 4 {
		t.Errorf("expected bucket samples for both series, got %d", counts["cpdb_request_duration_seconds_bucket"])
	}
	if counts["cpdb_request_duration_seconds_count"] != 2 || counts["cpdb_request_duration_seconds_sum"] != 2 {
		t.Errorf("missing _sum/_count samples: %v", counts)
	}
	if !strings.Contains(out, `cpdb_request_duration_seconds_bucket{endpoint="query",le="+Inf"} 2`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `cpdb_request_duration_seconds_sum{endpoint="query"} 3`) {
		t.Errorf("seconds sum not scaled from nanoseconds:\n%s", out)
	}
	// Cumulative buckets must be monotone within each series.
	monotone := make(map[string]int64)
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		name := line[:strings.Index(line, ",le=")]
		v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if v < monotone[name] {
			t.Errorf("non-monotone cumulative bucket at %q", line)
		}
		monotone[name] = v
	}
	// HELP/TYPE appear exactly once per family.
	if n := strings.Count(out, "# TYPE cpdb_request_duration_seconds "); n != 1 {
		t.Errorf("TYPE line emitted %d times, want 1", n)
	}
}

func TestWriteGaugeFamily(t *testing.T) {
	var b strings.Builder
	WriteGaugeFamily(&b, "cpdb_backend_gauge", "Backend gauges.", map[string]int64{
		"repl.lag.0": 3,
		"auth.root":  1,
	})
	out := b.String()
	parseExposition(t, out)
	if !strings.Contains(out, `cpdb_backend_gauge{name="repl.lag.0"} 3`) {
		t.Errorf("missing labeled gauge:\n%s", out)
	}
	// Keys render sorted.
	if strings.Index(out, `auth.root`) > strings.Index(out, `repl.lag.0`) {
		t.Errorf("gauge keys not sorted:\n%s", out)
	}
	b.Reset()
	WriteGaugeFamily(&b, "cpdb_backend_gauge", "Backend gauges.", nil)
	if b.Len() != 0 {
		t.Errorf("empty family rendered: %q", b.String())
	}
}

func TestStatsMapAndDumpLines(t *testing.T) {
	r := NewRegistry()
	req := r.Counter("cpdb_requests_total", "Requests.", WithStatKey("requests"))
	r.Gauge("cpdb_cursors_open", "Cursors.", WithStatKey("cursors_open"))
	r.Counter("cpdb_hidden_total", "No stat key.")
	r.Histogram("cpdb_latency_seconds", "Latency.", UnitSeconds, WithStatKey("ignored"))
	req.Add(5)

	m := r.StatsMap(map[string]int64{"repl.lag.0": 0, "extra": 9})
	want := map[string]int64{"requests": 5, "cursors_open": 0, "repl.lag.0": 0, "extra": 9}
	if len(m) != len(want) {
		t.Fatalf("StatsMap = %v, want %v", m, want)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("StatsMap[%q] = %d, want %d", k, m[k], v)
		}
	}

	lines := DumpLines(map[string]int64{
		"requests":          0, // zero, elided
		"errors":            2,
		"cursors_open":      0, // zero but always dumped
		"endpoint.scan/all": 0, // zero but always dumped
		"endpoint.append":   0, // zero, elided
		"repl.lag.0":        0, // repl.* always dumped
		"auth.proofs":       0, // auth.* always dumped
	})
	got := strings.Join(lines, "\n")
	wantLines := "auth.proofs=0\ncursors_open=0\nendpoint.scan/all=0\nerrors=2\nrepl.lag.0=0"
	if got != wantLines {
		t.Errorf("DumpLines =\n%s\nwant\n%s", got, wantLines)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("cpdb_a_total", "A.")
	mustPanic("kind mismatch", func() { r.Gauge("cpdb_a_total", "A.") })
	mustPanic("help mismatch", func() { r.Counter("cpdb_a_total", "Different.") })
	mustPanic("duplicate series", func() { r.Counter("cpdb_a_total", "A.") })
	// Same family, new label set: fine.
	r.Counter("cpdb_a_total", "A.", WithLabel("endpoint", "query"))
	mustPanic("duplicate labeled series", func() {
		r.Counter("cpdb_a_total", "A.", WithLabel("endpoint", "query"))
	})
}

func TestTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace id lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Errorf("two trace ids collided: %s", a)
	}
	if _, err := strconv.ParseUint(a, 16, 64); err != nil {
		t.Errorf("trace id %q is not hex: %v", a, err)
	}
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Errorf("TraceID(background) = %q, want empty", got)
	}
	ctx = WithTraceID(ctx, a)
	if got := TraceID(ctx); got != a {
		t.Errorf("TraceID round trip = %q, want %q", got, a)
	}
}
