package provobs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders registries in the Prometheus text exposition format
// (version 0.0.4): one HELP and one TYPE line per family, then one sample
// line per series — counters and gauges as single samples, histograms as
// cumulative _bucket series plus _sum and _count. Output is deterministic
// (families and series sorted) so the CI lint can diff scrapes and the
// tests can assert exact lines.

// A Unit says how a histogram's raw int64 observations are scaled for
// exposition.
type Unit int

const (
	// UnitCount exposes raw observed values (records per stream).
	UnitCount Unit = iota
	// UnitSeconds exposes nanosecond observations as seconds — the
	// Prometheus base unit for *_seconds histogram families.
	UnitSeconds
)

// scale returns the exposition multiplier.
func (u Unit) scale() float64 {
	if u == UnitSeconds {
		return 1e-9
	}
	return 1
}

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labelString renders a label set as `k1="v1",k2="v2"` ("" when empty).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, escapeLabel(l.Value))
	}
	return strings.Join(parts, ",")
}

// sample renders one exposition line: name, optional label set, value.
func sample(w io.Writer, name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// joinLabels appends an extra pair ("le") to a rendered label set.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// WritePrometheus renders every family of every registry, families sorted
// by name across registries and series sorted by label set within each
// family. Families that appear in several registries with identical
// help/kind merge into one block (HELP/TYPE emitted once).
func WritePrometheus(w io.Writer, regs ...*Registry) {
	merged := make(map[string]*family)
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		for name, f := range r.fams {
			m := merged[name]
			if m == nil {
				m = &family{name: f.name, help: f.help, kind: f.kind, unit: f.unit}
				merged[name] = m
			}
			m.ser = append(m.ser, f.ser...)
		}
		r.mu.Unlock()
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeFamily(w, merged[name])
	}
}

// writeFamily renders one HELP/TYPE block and its series.
func writeFamily(w io.Writer, f *family) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	ser := make([]*series, len(f.ser))
	copy(ser, f.ser)
	sort.Slice(ser, func(i, j int) bool {
		return labelString(ser[i].meta.labels) < labelString(ser[j].meta.labels)
	})
	for _, s := range ser {
		labels := labelString(s.meta.labels)
		if f.kind != kindHistogram {
			sample(w, f.name, labels, strconv.FormatInt(s.load(), 10))
			continue
		}
		writeHistogram(w, f, labels, s.h.Snapshot())
	}
}

// writeHistogram renders one series' cumulative buckets, sum and count.
// Bucket 0 is always emitted (so every series carries at least one finite
// le even before its first observation), then every bucket that holds
// observations; empty intermediate buckets add no information to a
// cumulative histogram and are elided to keep the exposition small.
// A bucket line whose native (non-cumulative) bucket holds an exemplar
// gains an OpenMetrics-style suffix after the value:
//
//	name_bucket{le="0.001"} 17 # {trace_id="9f2c51e0a4b7d803"} 0.00083
//
// linking the bucket to a trace retrievable from GET /v1/traces/{id}.
func writeHistogram(w io.Writer, f *family, labels string, s HistSnapshot) {
	scale := f.unit.scale()
	cum := int64(0)
	for i, c := range s.Bucket {
		if c == 0 && i != 0 {
			continue
		}
		cum += c
		le := fmt.Sprintf("le=%q", formatFloat(upperBound(i)*scale))
		value := strconv.FormatInt(cum, 10)
		if s.Exemplars != nil && s.Exemplars[i] != nil && c > 0 {
			e := s.Exemplars[i]
			value += fmt.Sprintf(" # {trace_id=%q} %s", escapeLabel(e.TraceID),
				formatFloat(float64(e.Value)*scale))
		}
		sample(w, f.name+"_bucket", joinLabels(labels, le), value)
	}
	sample(w, f.name+"_bucket", joinLabels(labels, `le="+Inf"`), strconv.FormatInt(s.Count, 10))
	sample(w, f.name+"_sum", labels, formatFloat(float64(s.Sum)*scale))
	sample(w, f.name+"_count", labels, strconv.FormatInt(s.Count, 10))
}

// WriteGaugeFamily renders one gauge family from a flat name→value map,
// each key becoming a name="…" label — how a backend chain's legacy
// Gauger gauges (repl.lag.0, auth.proofs_served) join the /metrics
// exposition without each layer registering typed series.
func WriteGaugeFamily(w io.Writer, name, help string, values map[string]int64) {
	if len(values) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sample(w, name, fmt.Sprintf("name=%q", escapeLabel(k)), strconv.FormatInt(values[k], 10))
	}
}
