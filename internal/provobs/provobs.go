// Package provobs is the observability layer under every other cpdb
// component: a typed metrics registry (monotonic counters, gauges, and
// lock-cheap log-bucketed histograms with quantile snapshots), Prometheus
// text exposition over any set of registries, and the request trace-id
// plumbing the HTTP layer threads through context.Context.
//
// The package subsumes the ad-hoc map[string]int64 plumbing that grew
// around /v1/stats: a metric registered with a stats key (WithStatKey)
// still appears under its legacy flat name in Registry.StatsMap, so the
// /v1/stats JSON a fleet of dashboards may already scrape stays
// byte-compatible, while the same metric additionally serves its typed
// Prometheus family — with latency distributions, not just totals — at
// GET /metrics.
//
// Design constraints, in order:
//
//   - Hot-path cost: Counter.Add, Gauge.Add/Set and Histogram.Observe are
//     one or two atomic adds, no locks, no allocation — cheap enough to sit
//     on every request and inside every plan operator.
//   - One registry per component: the provhttp server, an authenticated
//     store, a replicated store each own a Registry; anything that wraps a
//     backend forwards the inner registries via the Source interface, so a
//     composed chain (verified over sharded over rel) exposes every layer's
//     metrics through the one daemon endpoint.
//   - Exposition is a pure function of snapshots: WritePrometheus takes any
//     number of registries and renders deterministic, lint-clean text — the
//     CI scrape parses every line and rejects duplicates.
package provobs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// A Label is one metric dimension ({Key="endpoint", Value="scan/all"}).
// Label values are rendered into the exposition escaped; keys must be valid
// Prometheus label names ([a-zA-Z_][a-zA-Z0-9_]*), which every caller in
// this module uses literals for.
type Label struct {
	Key   string
	Value string
}

// A Counter is a monotonically increasing metric (requests served, records
// appended). Add with a negative delta is a programming error; nothing
// checks it, and the exposition would still render the decreased value.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// A Gauge is a point-in-time value that moves both ways (cursors currently
// open, replication lag).
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (use a negative n to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set pins the gauge to v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// metricKind discriminates the families of a registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metricMeta is the registration-time identity of one series.
type metricMeta struct {
	labels  []Label
	statKey string
}

// A MetricOpt configures one series at registration.
type MetricOpt func(*metricMeta)

// WithLabel adds one label pair to the series.
func WithLabel(key, value string) MetricOpt {
	return func(m *metricMeta) { m.labels = append(m.labels, Label{key, value}) }
}

// WithStatKey also publishes the series (counters and gauges only) under
// the given flat key in Registry.StatsMap — the legacy /v1/stats name the
// typed metric subsumes.
func WithStatKey(key string) MetricOpt {
	return func(m *metricMeta) { m.statKey = key }
}

// series is one registered metric with its identity.
type series struct {
	meta metricMeta
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// load returns the scalar value of a counter/gauge series.
func (s *series) load() int64 {
	if s.c != nil {
		return s.c.Load()
	}
	return s.g.Load()
}

// family groups the series of one metric name.
type family struct {
	name string
	help string
	kind metricKind
	unit Unit // histograms only
	ser  []*series
}

// A Registry holds one component's metrics. Registration (Counter, Gauge,
// Histogram) is cheap but locked — do it once at construction; the returned
// handles are the lock-free hot path. The zero Registry is not usable; call
// NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register adds one series under name, creating or extending its family.
// Mismatched re-registration (same name, different kind or help) and
// duplicate label sets panic: both are wiring bugs, caught at construction.
func (r *Registry) register(name, help string, kind metricKind, unit Unit, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, unit: unit}
		r.fams[name] = f
	} else if f.kind != kind || f.help != help || f.unit != unit {
		panic(fmt.Sprintf("provobs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	key := labelString(s.meta.labels)
	for _, prev := range f.ser {
		if labelString(prev.meta.labels) == key {
			panic(fmt.Sprintf("provobs: duplicate series %s{%s}", name, key))
		}
	}
	f.ser = append(f.ser, s)
}

// Counter registers (and returns) a counter series. By Prometheus
// convention the family name should end in _total.
func (r *Registry) Counter(name, help string, opts ...MetricOpt) *Counter {
	s := &series{c: &Counter{}}
	for _, o := range opts {
		o(&s.meta)
	}
	r.register(name, help, kindCounter, UnitCount, s)
	return s.c
}

// Gauge registers (and returns) a gauge series.
func (r *Registry) Gauge(name, help string, opts ...MetricOpt) *Gauge {
	s := &series{g: &Gauge{}}
	for _, o := range opts {
		o(&s.meta)
	}
	r.register(name, help, kindGauge, UnitCount, s)
	return s.g
}

// Histogram registers (and returns) a histogram series. unit says how
// observed values are scaled in the exposition: UnitSeconds histograms
// observe nanoseconds and expose seconds (name them *_seconds), UnitCount
// histograms expose raw values.
func (r *Registry) Histogram(name, help string, unit Unit, opts ...MetricOpt) *Histogram {
	s := &series{h: NewHistogram()}
	for _, o := range opts {
		o(&s.meta)
	}
	r.register(name, help, kindHistogram, unit, s)
	return s.h
}

// StatsMap snapshots every counter and gauge registered with a stat key
// into the legacy flat map, merging any extra maps (a backend's Gauger
// gauges) over it. This is the one snapshot function behind both the
// /v1/stats endpoint and the daemon's shutdown dump.
func (r *Registry) StatsMap(extra ...map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	r.mu.Lock()
	for _, f := range r.fams {
		if f.kind == kindHistogram {
			continue
		}
		for _, s := range f.ser {
			if s.meta.statKey != "" {
				out[s.meta.statKey] = s.load()
			}
		}
	}
	r.mu.Unlock()
	for _, m := range extra {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}

// DumpLines renders a stats snapshot as sorted "k=v" lines for a shutdown
// dump. Zero values are elided, except the ones where zero is exactly the
// interesting reading: cursors_open (the cursor-leak gauge), the
// endpoint.scan/all counter (did clients use the streaming cursor), every
// repl.* / auth.* gauge (a zero lag or zero verify-failure count at
// shutdown is the healthy sign-off being looked for), and every cache.*
// counter (a cache that was enabled but never hit should say so, not
// vanish).
func DumpLines(stats map[string]int64) []string {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		if stats[k] != 0 || alwaysDumped(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	lines := make([]string, len(keys))
	for i, k := range keys {
		lines[i] = fmt.Sprintf("%s=%d", k, stats[k])
	}
	return lines
}

// alwaysDumped reports whether a stats key prints even at zero.
func alwaysDumped(k string) bool {
	if k == "cursors_open" || k == "endpoint.scan/all" {
		return true
	}
	if len(k) > 6 && k[:6] == "cache." {
		return true
	}
	return len(k) > 5 && (k[:5] == "repl." || k[:5] == "auth.")
}

// A Source is a backend (or backend wrapper) that exposes provobs
// registries. Wrappers forward their inner backend's registries after
// their own, so the daemon's /metrics walks the whole chain.
type Source interface {
	ObsRegistries() []*Registry
}

// SourceRegistries returns v's registries when it is a Source, else nil —
// the nil-tolerant unwrapping helper exposition sites use.
func SourceRegistries(v any) []*Registry {
	if s, ok := v.(Source); ok {
		return s.ObsRegistries()
	}
	return nil
}
