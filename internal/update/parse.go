package update

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/path"
	"repro/internal/tree"
)

// ParseScript parses a multi-line update script in the paper's Figure 3
// syntax. Statements are separated by semicolons and/or newlines; an
// optional leading "(n)" step number and trailing comments beginning with
// "--" or "#" are ignored, so the figure can be pasted verbatim:
//
//	(1) delete c5 from T;
//	(2) copy S1/a1/y into T/c1/y;
//	(3) insert {c2 : {}} into T;
//	(10) insert {y : 12} into T/c4;
func ParseScript(script string) (Sequence, error) {
	var seq Sequence
	for lineNo, raw := range strings.Split(script, "\n") {
		for _, stmt := range strings.Split(raw, ";") {
			stmt = stripComment(stmt)
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			op, err := ParseOp(stmt)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineNo+1, err)
			}
			seq = append(seq, op)
		}
	}
	return seq, nil
}

// MustParseScript is ParseScript for known-good fixtures; it panics on error.
func MustParseScript(script string) Sequence {
	s, err := ParseScript(script)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseOp parses a single statement (without trailing semicolon).
func ParseOp(stmt string) (Op, error) {
	stmt = strings.TrimSpace(stripStepNumber(stmt))
	switch {
	case strings.HasPrefix(stmt, "insert"), strings.HasPrefix(stmt, "ins "):
		return parseInsert(stmt)
	case strings.HasPrefix(stmt, "delete"), strings.HasPrefix(stmt, "del "):
		return parseDelete(stmt)
	case strings.HasPrefix(stmt, "copy"):
		return parseCopy(stmt)
	default:
		return nil, fmt.Errorf("unrecognized statement %q", stmt)
	}
}

func stripStepNumber(s string) string {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") {
		return s
	}
	end := strings.IndexByte(s, ')')
	if end < 0 {
		return s
	}
	if _, err := strconv.Atoi(strings.TrimSpace(s[1:end])); err != nil {
		return s
	}
	return s[end+1:]
}

func stripComment(s string) string {
	if i := strings.Index(s, "--"); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	return s
}

// parseInsert parses `insert {LABEL : VALUE} into PATH` where VALUE is `{}`,
// a bare token, or a double-quoted Go string.
func parseInsert(stmt string) (Op, error) {
	rest, ok := cutKeyword(stmt, "insert")
	if !ok {
		rest, _ = cutKeyword(stmt, "ins")
	}
	body, intoPath, err := splitOn(rest, "into")
	if err != nil {
		return nil, err
	}
	body = strings.TrimSpace(body)
	if !strings.HasPrefix(body, "{") || !strings.HasSuffix(body, "}") {
		return nil, fmt.Errorf("insert body must be {label : value}, got %q", body)
	}
	inner := body[1 : len(body)-1]
	colon := strings.IndexByte(inner, ':')
	if colon < 0 {
		return nil, fmt.Errorf("insert body missing ':' in %q", body)
	}
	label := strings.TrimSpace(inner[:colon])
	valTok := strings.TrimSpace(inner[colon+1:])
	if !path.ValidLabel(label) {
		return nil, fmt.Errorf("invalid label %q", label)
	}
	var value *tree.Node
	switch {
	case valTok == "{}" || valTok == "":
		value = nil // empty tree
	case strings.HasPrefix(valTok, "\""):
		unq, err := strconv.Unquote(valTok)
		if err != nil {
			return nil, fmt.Errorf("bad quoted value %q: %v", valTok, err)
		}
		value = tree.NewLeaf(unq)
	default:
		value = tree.NewLeaf(valTok)
	}
	into, err := path.Parse(strings.TrimSpace(intoPath))
	if err != nil {
		return nil, err
	}
	return Insert{Into: into, Label: label, Value: value}, nil
}

// parseDelete parses `delete LABEL from PATH`. For convenience it also
// accepts `delete PATH` (a full path whose final component is the label).
func parseDelete(stmt string) (Op, error) {
	rest, ok := cutKeyword(stmt, "delete")
	if !ok {
		rest, _ = cutKeyword(stmt, "del")
	}
	labelPart, fromPart, err := splitOn(rest, "from")
	if err != nil {
		// `delete T/c5` form: final component is the deleted label.
		p, perr := path.Parse(strings.TrimSpace(rest))
		if perr != nil || p.Len() < 2 {
			return nil, err
		}
		return Delete{From: p.MustParent(), Label: p.Base()}, nil
	}
	label := strings.TrimSpace(labelPart)
	if !path.ValidLabel(label) {
		return nil, fmt.Errorf("invalid label %q", label)
	}
	from, perr := path.Parse(strings.TrimSpace(fromPart))
	if perr != nil {
		return nil, perr
	}
	return Delete{From: from, Label: label}, nil
}

// parseCopy parses `copy SRC into DST`.
func parseCopy(stmt string) (Op, error) {
	rest, _ := cutKeyword(stmt, "copy")
	srcPart, dstPart, err := splitOn(rest, "into")
	if err != nil {
		return nil, err
	}
	src, err := path.Parse(strings.TrimSpace(srcPart))
	if err != nil {
		return nil, err
	}
	dst, err := path.Parse(strings.TrimSpace(dstPart))
	if err != nil {
		return nil, err
	}
	return Copy{Src: src, Dst: dst}, nil
}

// cutKeyword strips a leading keyword followed by whitespace or '{'.
func cutKeyword(s, kw string) (string, bool) {
	if !strings.HasPrefix(s, kw) {
		return s, false
	}
	rest := s[len(kw):]
	if rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == '{' {
		return strings.TrimSpace(rest), true
	}
	return s, false
}

// splitOn splits s at the last occurrence of the standalone keyword kw
// ("into"/"from"), so that labels containing the keyword as a substring
// still parse.
func splitOn(s, kw string) (before, after string, err error) {
	needle := " " + kw + " "
	i := strings.LastIndex(s, needle)
	if i < 0 {
		return "", "", fmt.Errorf("missing %q in %q", kw, s)
	}
	return s[:i], s[i+len(needle):], nil
}
