package update_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/path"
	"repro/internal/tree"
	"repro/internal/update"
)

// randomOpForParse builds a random operation with labels drawn from a pool
// that includes awkward-but-legal characters.
func randomOpForParse(r *rand.Rand) update.Op {
	labels := []string{"a", "b{1}", "into", "from", "copy", "x-y", "Release{20}", "c.d"}
	lbl := func() string { return labels[r.Intn(len(labels))] }
	randPath := func() path.Path {
		n := 1 + r.Intn(3)
		p := path.New("T")
		for i := 0; i < n; i++ {
			p = p.Child(lbl())
		}
		return p
	}
	switch r.Intn(4) {
	case 0:
		return update.Insert{Into: randPath(), Label: lbl()}
	case 1:
		vals := []string{"12", "a b", `quo"te`, "", "plain"}
		return update.Insert{Into: randPath(), Label: lbl(), Value: tree.NewLeaf(vals[r.Intn(len(vals))])}
	case 2:
		return update.Delete{From: randPath(), Label: lbl()}
	default:
		src := path.New("S1")
		for i := 0; i <= r.Intn(3); i++ {
			src = src.Child(lbl())
		}
		return update.Copy{Src: src, Dst: randPath()}
	}
}

// TestQuickParseRenderRoundTrip: rendering any operation and parsing it
// back yields the same operation — even with labels that collide with the
// grammar's keywords ("into", "from", "copy") or contain spaces in values.
func TestQuickParseRenderRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		op := randomOpForParse(r)
		parsed, err := update.ParseOp(op.String())
		if err != nil {
			t.Logf("seed %d: %q: %v", seed, op, err)
			return false
		}
		return parsed.String() == op.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickScriptRoundTrip: sequences survive render→parse as scripts.
func TestQuickScriptRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var seq update.Sequence
		for i, n := 0, 1+r.Intn(6); i < n; i++ {
			seq = append(seq, randomOpForParse(r))
		}
		parsed, err := update.ParseScript(seq.String())
		if err != nil {
			return false
		}
		return parsed.String() == seq.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
