package update_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/path"
	"repro/internal/tree"
	"repro/internal/update"
)

// TestFigure3Script is the paper's worked example: applying the Figure 3
// update sequence to the Figure 4 initial state must yield T'.
func TestFigure3Script(t *testing.T) {
	f := figures.Forest()
	seq := figures.Sequence()
	if len(seq) != 10 {
		t.Fatalf("parsed %d ops, want 10", len(seq))
	}
	n, err := seq.Apply(f)
	if err != nil {
		t.Fatalf("apply stopped at op %d: %v", n, err)
	}
	if got, want := f.DB("T"), figures.TPrime(); !got.Equal(want) {
		t.Errorf("T' mismatch:\n got %s\nwant %s", got, want)
	}
	// Sources must be untouched.
	if !f.DB("S1").Equal(figures.S1()) || !f.DB("S2").Equal(figures.S2()) {
		t.Error("source databases were mutated")
	}
}

func TestParseOpForms(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"insert {c2 : {}} into T", "insert {c2 : {}} into T"},
		{"ins {c2:{}} into T", "insert {c2 : {}} into T"},
		{"insert {y : 12} into T/c4", "insert {y : 12} into T/c4"},
		{`insert {y : "a b"} into T/c4`, `insert {y : "a b"} into T/c4`},
		{"delete c5 from T", "delete c5 from T"},
		{"del c5 from T", "delete c5 from T"},
		{"delete T/c5", "delete c5 from T"},
		{"copy S1/a1/y into T/c1/y", "copy S1/a1/y into T/c1/y"},
		{"  (7)  copy S1/a3 into T/c3  ", "copy S1/a3 into T/c3"},
	}
	for _, c := range cases {
		op, err := update.ParseOp(c.in)
		if err != nil {
			t.Errorf("ParseOp(%q): %v", c.in, err)
			continue
		}
		if op.String() != c.want {
			t.Errorf("ParseOp(%q).String() = %q, want %q", c.in, op, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate T/x",
		"insert {a} into T",
		"insert {a : 1} T",
		"insert {bad/label : 1} into T",
		"delete from T",
		"delete x",
		"copy S1/a into",
		"copy into T/x",
		`insert {y : "unterminated} into T`,
	}
	for _, s := range bad {
		if _, err := update.ParseOp(s); err == nil {
			t.Errorf("ParseOp(%q): expected error", s)
		}
	}
	if _, err := update.ParseScript("copy A into B\nnonsense here"); err == nil {
		t.Error("script with bad line should error")
	} else if !errors.Is(err, update.ErrParse) {
		t.Errorf("want ErrParse, got %v", err)
	}
}

func TestScriptCommentsAndNumbers(t *testing.T) {
	script := `
	-- initial cleanup
	(1) delete c5 from T;  -- drop the stale record
	# a comment line
	(2) copy S1/a1/y into T/c1/y
	`
	seq, err := update.ParseScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 {
		t.Fatalf("got %d ops, want 2: %v", len(seq), seq)
	}
}

func TestSequenceString(t *testing.T) {
	seq := figures.Sequence()
	s := seq.String()
	if !strings.Contains(s, "(1) delete c5 from T;") ||
		!strings.Contains(s, "(10) insert {y : 12} into T/c4;") {
		t.Errorf("Sequence.String missing expected lines:\n%s", s)
	}
	// Round trip: parsing the rendered script yields the same script.
	again := update.MustParseScript(s)
	if again.String() != s {
		t.Error("script render/parse not idempotent")
	}
}

func TestInsertSemantics(t *testing.T) {
	f := figures.Forest()
	// Duplicate label fails (t ⊎ {a:v} with shared edge).
	op := update.Insert{Into: path.MustParse("T"), Label: "c1"}
	if err := op.Apply(f); !errors.Is(err, tree.ErrDupEdge) {
		t.Errorf("duplicate insert: got %v", err)
	}
	// Missing parent fails.
	op = update.Insert{Into: path.MustParse("T/zzz"), Label: "a"}
	if err := op.Apply(f); !errors.Is(err, tree.ErrNoSuchPath) {
		t.Errorf("insert into missing path: got %v", err)
	}
	// Interior value with children is rejected.
	op = update.Insert{Into: path.MustParse("T"), Label: "c9", Value: tree.Build(tree.M{"x": 1})}
	if err := op.Apply(f); err == nil {
		t.Error("insert of non-atomic value should fail")
	}
	// Insert into forest root fails.
	op = update.Insert{Into: path.Root, Label: "x"}
	if _, err := op.Effect(f); !errors.Is(err, update.ErrRootTarget) {
		t.Errorf("insert into root: got %v", err)
	}
}

func TestDeleteSemantics(t *testing.T) {
	f := figures.Forest()
	op := update.Delete{From: path.MustParse("T"), Label: "nope"}
	if err := op.Apply(f); !errors.Is(err, tree.ErrNoSuchEdge) {
		t.Errorf("delete missing edge: got %v", err)
	}
	if err := (update.Delete{From: path.Root, Label: "T"}).Apply(f); !errors.Is(err, update.ErrRootTarget) {
		t.Error("delete from forest root should fail")
	}
}

func TestCopySemantics(t *testing.T) {
	f := figures.Forest()
	// Copy to a fresh label under an existing parent works (Fig 3 op 7).
	op := update.Copy{Src: path.MustParse("S1/a3"), Dst: path.MustParse("T/c3")}
	if err := op.Apply(f); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Get(path.MustParse("T/c3/y"))
	if got.Value() != "6" {
		t.Errorf("copied value = %v", got)
	}
	// Copy clones: mutating the target must not affect the source.
	n, _ := f.Get(path.MustParse("T/c3"))
	n.RemoveChild("y")
	if !f.Has(path.MustParse("S1/a3/y")) {
		t.Error("copy aliased the source subtree")
	}
	// Copy overwrites an existing destination.
	op = update.Copy{Src: path.MustParse("S1/a1/y"), Dst: path.MustParse("T/c1/y")}
	if err := op.Apply(f); err != nil {
		t.Fatal(err)
	}
	got, _ = f.Get(path.MustParse("T/c1/y"))
	if got.Value() != "2" {
		t.Errorf("overwrite copy = %v", got)
	}
	// Missing source fails.
	op = update.Copy{Src: path.MustParse("S1/zzz"), Dst: path.MustParse("T/c9")}
	if err := op.Apply(f); !errors.Is(err, tree.ErrNoSuchPath) {
		t.Errorf("copy from missing source: got %v", err)
	}
	// Missing destination parent fails.
	op = update.Copy{Src: path.MustParse("S1/a1"), Dst: path.MustParse("T/no/such")}
	if err := op.Apply(f); !errors.Is(err, update.ErrCopyMissing) {
		t.Errorf("copy into missing parent: got %v", err)
	}
	// Destination must be inside a database.
	op = update.Copy{Src: path.MustParse("S1/a1"), Dst: path.MustParse("T")}
	if err := op.Apply(f); !errors.Is(err, update.ErrRootTarget) {
		t.Errorf("copy onto database root: got %v", err)
	}
}

func TestInsertEffect(t *testing.T) {
	f := figures.Forest()
	op := update.Insert{Into: path.MustParse("T"), Label: "c9"}
	eff, err := op.Effect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Inserted) != 1 || eff.Inserted[0].String() != "T/c9" {
		t.Errorf("insert effect = %+v", eff)
	}
	// Effect against a duplicate label errors.
	dup := update.Insert{Into: path.MustParse("T"), Label: "c1"}
	if _, err := dup.Effect(f); err == nil {
		t.Error("duplicate insert effect should error")
	}
}

func TestDeleteEffect(t *testing.T) {
	f := figures.Forest()
	op := update.Delete{From: path.MustParse("T"), Label: "c5"}
	eff, err := op.Effect(f)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"T/c5", "T/c5/x", "T/c5/y"}
	if len(eff.Deleted) != len(want) {
		t.Fatalf("delete effect = %+v", eff)
	}
	for i, w := range want {
		if eff.Deleted[i].String() != w {
			t.Errorf("Deleted[%d] = %q, want %q", i, eff.Deleted[i], w)
		}
	}
}

func TestCopyEffect(t *testing.T) {
	f := figures.Forest()
	op := update.Copy{Src: path.MustParse("S1/a2"), Dst: path.MustParse("T/c2")}
	eff, err := op.Effect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Copied) != 2 || eff.Overwritten {
		t.Fatalf("copy effect = %+v", eff)
	}
	if eff.Copied[0].Dst.String() != "T/c2" || eff.Copied[0].Src.String() != "S1/a2" {
		t.Errorf("root pair = %+v", eff.Copied[0])
	}
	if eff.Copied[1].Dst.String() != "T/c2/x" || eff.Copied[1].Src.String() != "S1/a2/x" {
		t.Errorf("child pair = %+v", eff.Copied[1])
	}
	// Overwriting copy reports the overwritten nodes.
	ow := update.Copy{Src: path.MustParse("S1/a1/y"), Dst: path.MustParse("T/c1/y")}
	eff, err = ow.Effect(f)
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Overwritten || len(eff.Deleted) != 1 || eff.Deleted[0].String() != "T/c1/y" {
		t.Errorf("overwrite effect = %+v", eff)
	}
}

// TestEffectMatchesApply checks, over the whole Figure 3 script, that each
// op's pre-computed effect is consistent with what Apply actually does.
func TestEffectMatchesApply(t *testing.T) {
	f := figures.Forest()
	for i, op := range figures.Sequence() {
		eff, err := op.Effect(f)
		if err != nil {
			t.Fatalf("op %d effect: %v", i+1, err)
		}
		if err := op.Apply(f); err != nil {
			t.Fatalf("op %d apply: %v", i+1, err)
		}
		for _, p := range eff.Inserted {
			if !f.Has(p) {
				t.Errorf("op %d: inserted %q missing after apply", i+1, p)
			}
		}
		for _, pr := range eff.Copied {
			if !f.Has(pr.Dst) {
				t.Errorf("op %d: copied %q missing after apply", i+1, pr.Dst)
			}
		}
		for _, p := range eff.Deleted {
			// Deleted nodes disappear unless a copy immediately rewrote
			// the same location (overwrite).
			if f.Has(p) && !eff.Overwritten {
				t.Errorf("op %d: deleted %q still present", i+1, p)
			}
		}
	}
}

func TestApplyStopsAtFirstError(t *testing.T) {
	f := figures.Forest()
	seq := update.Sequence{
		update.Insert{Into: path.MustParse("T"), Label: "ok"},
		update.Delete{From: path.MustParse("T"), Label: "missing"},
		update.Insert{Into: path.MustParse("T"), Label: "never"},
	}
	n, err := seq.Apply(f)
	if err == nil || n != 1 {
		t.Fatalf("Apply = %d, %v; want stop at index 1", n, err)
	}
	if f.Has(path.MustParse("T/never")) {
		t.Error("ops after failure must not run")
	}
	if !f.Has(path.MustParse("T/ok")) {
		t.Error("ops before failure must persist")
	}
}
