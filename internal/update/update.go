// Package update implements the atomic update language of Buneman, Chapman &
// Cheney (SIGMOD 2006, §2):
//
//	u ::= ins {a : v} into p | del a from p | copy q into p
//
// together with its semantics on forests of trees, the per-operation
// *effect* computation used by provenance tracking, and a parser for the
// textual script form used in the paper's Figure 3.
package update

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/path"
	"repro/internal/tree"
)

// Errors returned by update application.
var (
	ErrBadOp       = errors.New("update: malformed operation")
	ErrParse       = errors.New("update: parse error")
	ErrRootTarget  = errors.New("update: operation must address a node inside a database")
	ErrCopyMissing = errors.New("update: copy destination parent missing")
)

// An Op is one atomic update operation. The concrete types are Insert,
// Delete and Copy.
type Op interface {
	// Apply executes the operation against the forest, mutating the
	// target database in place.
	Apply(f *tree.Forest) error
	// Effect computes the operation's per-node effect against the
	// forest state *before* application; see Effect.
	Effect(f *tree.Forest) (Effect, error)
	// String renders the operation in the paper's script syntax.
	String() string
}

// Insert is `ins {Label : Value} into Into`: it adds a new edge under the
// node at Into. Value must be an empty tree or a leaf (the paper restricts v
// to the empty tree or a data value), so an insert always creates exactly
// one node.
type Insert struct {
	Into  path.Path
	Label string
	Value *tree.Node // nil means the empty tree {}
}

// Delete is `del Label from From`: it removes the edge Label under the node
// at From, together with the entire subtree below it.
type Delete struct {
	From  path.Path
	Label string
}

// Copy is `copy Src into Dst`: it replaces the subtree at Dst with a deep
// copy of the subtree at Src. Following the paper's own usage (Figure 3,
// operation 7 copies into T/c3 which does not yet exist), the destination
// edge is created if absent, but the destination's parent must exist.
type Copy struct {
	Src path.Path
	Dst path.Path
}

// An Effect describes exactly which nodes an operation inserts, deletes, or
// copies, as absolute paths, evaluated against the pre-state. This is the
// raw material of provenance tracking: the naïve method stores one record
// per entry here.
type Effect struct {
	// Inserted lists newly created node locations (for Insert, exactly
	// one; for Copy, none — copied nodes are Copied, not Inserted).
	Inserted []path.Path
	// Deleted lists node locations removed from the pre-state. For
	// Delete this is the whole subtree; for Copy it is the overwritten
	// subtree at the destination, if any (the paper's provenance model
	// does not record these as D rows — the copy subsumes them — but the
	// transactional store needs them to prune its active list).
	Deleted []path.Path
	// Copied lists (dst, src) location pairs, one per node of the copied
	// subtree, dst under the copy destination and src under the copy
	// source. Copied[0] is always the pair of subtree roots.
	Copied []CopyPair
	// Overwritten reports whether a Copy replaced an existing subtree.
	Overwritten bool
}

// CopyPair relates one copied node location to its source location.
type CopyPair struct {
	Dst path.Path
	Src path.Path
}

func (op Insert) value() *tree.Node {
	if op.Value == nil {
		return tree.NewTree()
	}
	return op.Value
}

func (op Insert) target() (path.Path, error) {
	if op.Into.IsRoot() {
		return path.Root, fmt.Errorf("%w: insert into forest root", ErrRootTarget)
	}
	return op.Into.TryChild(op.Label)
}

// Apply implements Op. It fails if Into is missing, if the label already
// exists there (t ⊎ {a:v} fails on shared labels), or if the value is an
// interior tree with children.
func (op Insert) Apply(f *tree.Forest) error {
	v := op.value()
	if !v.IsLeaf() && v.NumChildren() > 0 {
		return fmt.Errorf("%w: insert value must be a data value or the empty tree", ErrBadOp)
	}
	parent, err := f.Get(op.Into)
	if err != nil {
		return err
	}
	return parent.AddChild(op.Label, v.Clone())
}

// Effect implements Op: an insert creates exactly one node.
func (op Insert) Effect(f *tree.Forest) (Effect, error) {
	loc, err := op.target()
	if err != nil {
		return Effect{}, err
	}
	parent, err := f.Get(op.Into)
	if err != nil {
		return Effect{}, err
	}
	if parent.HasChild(op.Label) {
		return Effect{}, fmt.Errorf("%w: %q", tree.ErrDupEdge, loc)
	}
	return Effect{Inserted: []path.Path{loc}}, nil
}

// String renders the op in the paper's syntax, e.g. `insert {y : 12} into T/c4`.
func (op Insert) String() string {
	v := "{}"
	if op.Value != nil && op.Value.IsLeaf() {
		v = quoteValue(op.Value.Value())
	}
	return fmt.Sprintf("insert {%s : %s} into %s", op.Label, v, op.Into)
}

// Apply implements Op.
func (op Delete) Apply(f *tree.Forest) error {
	if op.From.IsRoot() {
		return fmt.Errorf("%w: delete from forest root", ErrRootTarget)
	}
	parent, err := f.Get(op.From)
	if err != nil {
		return err
	}
	return parent.RemoveChild(op.Label)
}

// Effect implements Op: a delete removes the full subtree under From/Label.
func (op Delete) Effect(f *tree.Forest) (Effect, error) {
	loc, err := op.From.TryChild(op.Label)
	if err != nil {
		return Effect{}, err
	}
	node, err := f.Get(loc)
	if err != nil {
		return Effect{}, err
	}
	var eff Effect
	node.Walk(func(rel path.Path, _ *tree.Node) error {
		eff.Deleted = append(eff.Deleted, loc.Join(rel))
		return nil
	})
	return eff, nil
}

// String renders the op in the paper's syntax, e.g. `delete c5 from T`.
func (op Delete) String() string {
	return fmt.Sprintf("delete %s from %s", op.Label, op.From)
}

// Apply implements Op: t[Dst := t.Src], cloning the source subtree.
func (op Copy) Apply(f *tree.Forest) error {
	src, err := f.Get(op.Src)
	if err != nil {
		return err
	}
	if op.Dst.Len() < 2 {
		// The destination must be a node inside a database: overwriting
		// an entire database root is not a copy-paste action.
		return fmt.Errorf("%w: copy destination %q", ErrRootTarget, op.Dst)
	}
	parent, err := f.Get(op.Dst.MustParent())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCopyMissing, err)
	}
	return parent.SetChild(op.Dst.Base(), src.Clone())
}

// Effect implements Op: one CopyPair per node of the copied subtree, plus
// the overwritten destination subtree (if any) in Deleted.
func (op Copy) Effect(f *tree.Forest) (Effect, error) {
	src, err := f.Get(op.Src)
	if err != nil {
		return Effect{}, err
	}
	if op.Dst.Len() < 2 {
		return Effect{}, fmt.Errorf("%w: copy destination %q", ErrRootTarget, op.Dst)
	}
	if _, err := f.Get(op.Dst.MustParent()); err != nil {
		return Effect{}, fmt.Errorf("%w: %v", ErrCopyMissing, err)
	}
	var eff Effect
	src.Walk(func(rel path.Path, _ *tree.Node) error {
		eff.Copied = append(eff.Copied, CopyPair{Dst: op.Dst.Join(rel), Src: op.Src.Join(rel)})
		return nil
	})
	if old, err := f.Get(op.Dst); err == nil {
		eff.Overwritten = true
		old.Walk(func(rel path.Path, _ *tree.Node) error {
			eff.Deleted = append(eff.Deleted, op.Dst.Join(rel))
			return nil
		})
	}
	return eff, nil
}

// String renders the op in the paper's syntax, e.g. `copy S1/a1/y into T/c1/y`.
func (op Copy) String() string {
	return fmt.Sprintf("copy %s into %s", op.Src, op.Dst)
}

// A Sequence is a sequence of atomic updates u1; ...; un.
type Sequence []Op

// Apply runs every operation in order; it stops at the first error,
// returning the index of the failing op.
func (s Sequence) Apply(f *tree.Forest) (int, error) {
	for i, op := range s {
		if err := op.Apply(f); err != nil {
			return i, fmt.Errorf("update: op %d (%s): %w", i+1, op, err)
		}
	}
	return len(s), nil
}

// String renders the sequence as a numbered script in the style of the
// paper's Figure 3.
func (s Sequence) String() string {
	var b strings.Builder
	for i, op := range s {
		fmt.Fprintf(&b, "(%d) %s;\n", i+1, op)
	}
	return b.String()
}

func quoteValue(v string) string {
	if v == "" || strings.ContainsAny(v, " \t{}:;\"") {
		return fmt.Sprintf("%q", v)
	}
	return v
}
