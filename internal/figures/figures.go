// Package figures contains the worked example of Buneman, Chapman & Cheney
// (SIGMOD 2006), Figures 3–5, as executable fixtures. Multiple packages'
// golden tests, the examples, and `cpdbbench -exp fig5` reproduce the
// paper's provenance tables from these fixtures.
//
// The paper's Figure 4 gives the shapes of S1, S2 and T and the provenance
// links; the concrete leaf values below are chosen consistently with the
// figure (the published rendering of the leaf values is partly ambiguous,
// but no experiment or provenance table depends on them).
package figures

import (
	"repro/internal/tree"
	"repro/internal/update"
)

// Script is the update operation of Figure 3, verbatim.
const Script = `
(1) delete c5 from T;
(2) copy S1/a1/y into T/c1/y;
(3) insert {c2 : {}} into T;
(4) copy S1/a2 into T/c2;
(5) insert {y : {}} into T/c2;
(6) copy S2/b3/y into T/c2/y;
(7) copy S1/a3 into T/c3;
(8) insert {c4 : {}} into T;
(9) copy S2/b2 into T/c4;
(10) insert {y : 12} into T/c4;
`

// Sequence returns the parsed Figure 3 update sequence.
func Sequence() update.Sequence {
	return update.MustParseScript(Script)
}

// S1 returns source database S1 of Figure 4.
func S1() *tree.Node {
	return tree.Build(tree.M{
		"a1": tree.M{"x": 1, "y": 2},
		"a2": tree.M{"x": 3},
		"a3": tree.M{"x": 7, "y": 6},
	})
}

// S2 returns source database S2 of Figure 4.
func S2() *tree.Node {
	return tree.Build(tree.M{
		"b1": tree.M{"x": 2, "y": 5},
		"b2": tree.M{"x": 4},
		"b3": tree.M{"x": 7, "y": 6},
	})
}

// T0 returns the initial version of the target database T of Figure 4.
func T0() *tree.Node {
	return tree.Build(tree.M{
		"c1": tree.M{"x": 1, "y": 3},
		"c5": tree.M{"x": 9, "y": 7},
	})
}

// TPrime returns the expected final version T' of Figure 4 — the result of
// applying the Figure 3 script to T0 with sources S1 and S2.
func TPrime() *tree.Node {
	return tree.Build(tree.M{
		"c1": tree.M{"x": 1, "y": 2},
		"c2": tree.M{"x": 3, "y": 6},
		"c3": tree.M{"x": 7, "y": 6},
		"c4": tree.M{"x": 4, "y": 12},
	})
}

// Forest returns a fresh forest {S1, S2, T=T0}.
func Forest() *tree.Forest {
	f := tree.NewForest()
	f.AddDB("S1", S1())
	f.AddDB("S2", S2())
	f.AddDB("T", T0())
	return f
}

// FirstTid is the transaction number of the first operation in Figure 5
// (121), used by the golden tests so the reproduced tables match the paper
// row for row.
const FirstTid = 121

// A Row is one line of a provenance table in Figure 5, in display form.
type Row struct {
	Tid int64
	Op  string // "I", "C", "D"
	Loc string
	Src string // "" renders as ⊥
}

// Fig5a is Figure 5(a): naïve provenance, one transaction per operation.
var Fig5a = []Row{
	{121, "D", "T/c5", ""},
	{121, "D", "T/c5/x", ""},
	{121, "D", "T/c5/y", ""},
	{122, "C", "T/c1/y", "S1/a1/y"},
	{123, "I", "T/c2", ""},
	{124, "C", "T/c2", "S1/a2"},
	{124, "C", "T/c2/x", "S1/a2/x"},
	{125, "I", "T/c2/y", ""},
	{126, "C", "T/c2/y", "S2/b3/y"},
	{127, "C", "T/c3", "S1/a3"},
	{127, "C", "T/c3/x", "S1/a3/x"},
	{127, "C", "T/c3/y", "S1/a3/y"},
	{128, "I", "T/c4", ""},
	{129, "C", "T/c4", "S2/b2"},
	{129, "C", "T/c4/x", "S2/b2/x"},
	{130, "I", "T/c4/y", ""},
}

// Fig5b is Figure 5(b): the entire update as one transaction (transactional
// provenance).
var Fig5b = []Row{
	{121, "D", "T/c5", ""},
	{121, "D", "T/c5/x", ""},
	{121, "D", "T/c5/y", ""},
	{121, "C", "T/c1/y", "S1/a1/y"},
	{121, "C", "T/c2", "S1/a2"},
	{121, "C", "T/c2/x", "S1/a2/x"},
	{121, "C", "T/c2/y", "S2/b3/y"},
	{121, "C", "T/c3", "S1/a3"},
	{121, "C", "T/c3/x", "S1/a3/x"},
	{121, "C", "T/c3/y", "S1/a3/y"},
	{121, "C", "T/c4", "S2/b2"},
	{121, "C", "T/c4/x", "S2/b2/x"},
	{121, "I", "T/c4/y", ""},
}

// Fig5c is Figure 5(c): hierarchical provenance, one transaction per
// operation.
var Fig5c = []Row{
	{121, "D", "T/c5", ""},
	{122, "C", "T/c1/y", "S1/a1/y"},
	{123, "I", "T/c2", ""},
	{124, "C", "T/c2", "S1/a2"},
	{125, "I", "T/c2/y", ""},
	{126, "C", "T/c2/y", "S2/b3/y"},
	{127, "C", "T/c3", "S1/a3"},
	{128, "I", "T/c4", ""},
	{129, "C", "T/c4", "S2/b2"},
	{130, "I", "T/c4/y", ""},
}

// Fig5d is Figure 5(d): hierarchical-transactional provenance, the entire
// update as one transaction.
var Fig5d = []Row{
	{121, "D", "T/c5", ""},
	{121, "C", "T/c1/y", "S1/a1/y"},
	{121, "C", "T/c2", "S1/a2"},
	{121, "C", "T/c2/y", "S2/b3/y"},
	{121, "C", "T/c3", "S1/a3"},
	{121, "C", "T/c4", "S2/b2"},
	{121, "I", "T/c4/y", ""},
}
