package figures_test

import (
	"testing"

	"repro/internal/figures"
	"repro/internal/path"
	"repro/internal/provstore"
	"repro/internal/update"
)

func TestScriptParses(t *testing.T) {
	seq := figures.Sequence()
	if len(seq) != 10 {
		t.Fatalf("script parses to %d ops, want 10", len(seq))
	}
	// The op kinds match Figure 3 exactly.
	kinds := "DCICICCICI" // delete, copy, insert, copy, insert, copy, copy, insert, copy, insert
	for i, op := range seq {
		var k byte
		switch op.(type) {
		case update.Delete:
			k = 'D'
		case update.Copy:
			k = 'C'
		case update.Insert:
			k = 'I'
		}
		if k != kinds[i] {
			t.Errorf("op %d is %c, want %c", i+1, k, kinds[i])
		}
	}
}

func TestFixtureTreesAreFresh(t *testing.T) {
	// Each call returns an independent tree.
	a, b := figures.T0(), figures.T0()
	a.RemoveChild("c5")
	if !b.HasChild("c5") {
		t.Error("fixtures alias each other")
	}
	f1, f2 := figures.Forest(), figures.Forest()
	f1.DB("T").RemoveChild("c1")
	if !f2.DB("T").HasChild("c1") {
		t.Error("forests alias each other")
	}
}

func TestExpectedTablesAreConsistent(t *testing.T) {
	// Row counts per Figure 5.
	if len(figures.Fig5a) != 16 || len(figures.Fig5b) != 13 ||
		len(figures.Fig5c) != 10 || len(figures.Fig5d) != 7 {
		t.Error("fixture table sizes wrong")
	}
	// Every row is structurally valid: op in {I,C,D}, copy iff src set.
	for name, rows := range map[string][]figures.Row{
		"a": figures.Fig5a, "b": figures.Fig5b, "c": figures.Fig5c, "d": figures.Fig5d,
	} {
		for i, r := range rows {
			if r.Op != "I" && r.Op != "C" && r.Op != "D" {
				t.Errorf("table %s row %d: bad op %q", name, i, r.Op)
			}
			if (r.Op == "C") != (r.Src != "") {
				t.Errorf("table %s row %d: src/op mismatch", name, i)
			}
			if _, err := path.Parse(r.Loc); err != nil {
				t.Errorf("table %s row %d: bad loc %q", name, i, r.Loc)
			}
			// All locations are in T; all sources in S1/S2.
			if r.Loc[:2] != "T/" {
				t.Errorf("table %s row %d: loc outside T", name, i)
			}
		}
	}
	// The hierarchical tables are subsets of their full counterparts
	// (same (op, loc, src) triples, ignoring tids).
	sub := func(small, big []figures.Row) bool {
		in := map[string]bool{}
		for _, r := range big {
			in[r.Op+r.Loc+r.Src] = true
		}
		for _, r := range small {
			if !in[r.Op+r.Loc+r.Src] {
				return false
			}
		}
		return true
	}
	if !sub(figures.Fig5c, figures.Fig5a) {
		t.Error("Fig5c ⊄ Fig5a")
	}
	if !sub(figures.Fig5d, figures.Fig5b) {
		t.Error("Fig5d ⊄ Fig5b")
	}
	// Transactional tables use one tid (FirstTid); naive per-op ones span
	// FirstTid..FirstTid+9.
	for _, r := range figures.Fig5b {
		if r.Tid != figures.FirstTid {
			t.Errorf("Fig5b row with tid %d", r.Tid)
		}
	}
	maxTid := int64(0)
	for _, r := range figures.Fig5a {
		if r.Tid > maxTid {
			maxTid = r.Tid
		}
	}
	if maxTid != figures.FirstTid+9 {
		t.Errorf("Fig5a max tid = %d", maxTid)
	}
	_ = provstore.OpInsert // keep the import for the op-kind domain
}
