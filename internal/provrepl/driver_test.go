package provrepl

import (
	"context"
	"strings"
	"testing"

	"repro/internal/path"
	"repro/internal/provstore"
)

// TestDriverOpen: the replicated:// scheme composes nested DSNs and carries
// the routing options through.
func TestDriverOpen(t *testing.T) {
	b, err := provstore.OpenDSN("replicated://?primary=mem://&replica=mem://&replica=mem://&read=any&lag=2&poll=20ms")
	if err != nil {
		t.Fatal(err)
	}
	rb, ok := b.(*ReplicatedBackend)
	if !ok {
		t.Fatalf("OpenDSN returned %T, want *ReplicatedBackend", b)
	}
	defer rb.Close()
	if rb.NumReplicas() != 2 {
		t.Errorf("NumReplicas = %d, want 2", rb.NumReplicas())
	}
	if rb.ReadPolicy() != ReadAny {
		t.Errorf("ReadPolicy = %v, want any", rb.ReadPolicy())
	}
	if rb.LagBound() != 2 {
		t.Errorf("LagBound = %d, want 2", rb.LagBound())
	}
	ctx := context.Background()
	if err := rb.Append(ctx, []provstore.Record{{Tid: 1, Op: provstore.OpInsert, Loc: path.New("T", "x")}}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, rb)
	for i := 0; i < rb.NumReplicas(); i++ {
		n, err := rb.Replica(i).Count(ctx)
		if err != nil || n != 1 {
			t.Errorf("replica %d count = %d, %v; want 1", i, n, err)
		}
	}
}

// TestDriverOpenSharded: a nested DSN carrying its own parameters
// (URL-escaped) opens correctly — replication over a sharded store.
func TestDriverOpenSharded(t *testing.T) {
	b, err := provstore.OpenDSN("replicated://?primary=mem%3A%2F%2F%3Fshards%3D4&replica=mem://")
	if err != nil {
		t.Fatal(err)
	}
	rb := b.(*ReplicatedBackend)
	defer rb.Close()
	if _, ok := rb.Primary().(*provstore.ShardedBackend); !ok {
		t.Fatalf("primary is %T, want *ShardedBackend", rb.Primary())
	}
}

// TestDriverErrors: malformed replicated:// DSNs fail at open time with a
// message naming the problem.
func TestDriverErrors(t *testing.T) {
	cases := []struct {
		dsn  string
		want string
	}{
		{"replicated://x?primary=mem://&replica=mem://", "have no path"},
		{"replicated://?replica=mem://", "needs a primary"},
		{"replicated://?primary=mem://", "at least one replica"},
		{"replicated://?primary=mem://&replica=mem://&read=sometimes", "not primary or any"},
		{"replicated://?primary=mem://&replica=mem://&lag=-1", "lag must be >= 0"},
		{"replicated://?primary=mem://&replica=mem://&poll=fast", "not a positive duration"},
		{"replicated://?primary=mem://&replica=mem://&bogus=1", "unknown parameter"},
		{"replicated://?primary=nosuch://&replica=mem://", "primary"},
		{"replicated://?primary=mem://&replica=nosuch://", "replica 0"},
	}
	for _, c := range cases {
		_, err := provstore.OpenDSN(c.dsn)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("OpenDSN(%s) = %v, want error containing %q", c.dsn, err, c.want)
		}
	}
}
