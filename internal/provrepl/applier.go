package provrepl

import (
	"context"
	"fmt"
	"iter"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/path"
	"repro/internal/provauth"
	"repro/internal/provstore"
	"repro/internal/provtrace"
)

// A replica is one replica store plus its applier's state. The hw* fields
// are the applier goroutine's alone; everything the router or Gauges reads
// crosses goroutines through the atomics.
type replica struct {
	idx   int
	store provstore.Backend
	wake  chan struct{} // capacity 1; kick() never blocks

	healthy      atomic.Bool  // in the read rotation; restored by a clean pass
	synced       atomic.Int64 // shipped version this replica has fully applied
	appliedTid   atomic.Int64 // high-water transaction id (gauge)
	appliedRecs  atomic.Int64 // records shipped by this handle's applier (gauge)
	demotedUntil atomic.Int64 // unix nanos; out of the read rotation until then

	// rewindTo, when non-zero, tells the applier an out-of-order commit
	// landed at or above this tid behind the high-water mark; the next
	// pass re-ships from that tid, skipping records the replica already
	// holds. Writers set it (keeping the minimum), the applier consumes it.
	rewindTo atomic.Int64

	// High-water mark: the largest {Tid, Loc} key the replica holds. Owned
	// by the applier goroutine; recomputed from the replica itself at
	// startup and after any apply error (the crash-restart path).
	hwTid   int64
	hwLoc   path.Path
	hwValid bool
}

// setRewind requests a rewind to tid, keeping the smallest pending target.
func (r *replica) setRewind(tid int64) {
	for {
		cur := r.rewindTo.Load()
		if cur != 0 && cur <= tid {
			return
		}
		if r.rewindTo.CompareAndSwap(cur, tid) {
			return
		}
	}
}

// kick nudges the applier without blocking; a nudge during a pass stays
// buffered so the pass is immediately followed by another.
func (r *replica) kick() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// applier is the per-replica shipping loop: each pass drains the primary's
// seeked ScanAllAfter cursor from the replica's high-water mark into the
// replica, then the loop parks until an append kicks it, the poll interval
// expires (records written to the primary outside this handle), or the
// backend closes. An error marks the replica unhealthy, invalidates the
// high-water mark (it is recomputed from the replica — the same code path a
// process restart takes), and retries after a poll-interval backoff.
func (b *ReplicatedBackend) applier(r *replica) {
	defer b.wg.Done()
	for {
		shippedBefore := b.shipped.Load()
		if err := b.applyPass(r); err != nil {
			if b.ctx.Err() != nil {
				return
			}
			r.healthy.Store(false)
			r.hwValid = false
			select {
			case <-b.ctx.Done():
				return
			case <-time.After(b.opts.Poll):
			}
			continue
		}
		// The pass drained everything visible when it started, so the
		// replica holds at least every append acknowledged before it.
		r.synced.Store(shippedBefore)
		r.healthy.Store(true)
		select {
		case <-b.ctx.Done():
			return
		case <-r.wake:
		case <-time.After(b.opts.Poll):
		}
	}
}

// applyPass ships everything the primary holds beyond the replica's
// high-water mark, in (Tid, Loc) order, chunked at ApplyBatch but cut only
// at transaction boundaries — so the replica's content stays
// transaction-atomic whenever the primary's appends are.
//
// A pending rewind (an out-of-order commit landed behind the high-water
// mark) restarts the walk at the rewound tid instead: records up to the old
// high-water key are probed on the replica first and skipped when already
// present, so the repair ships only what is missing, and the high-water
// mark never regresses. If the rewound pass fails, the rewind target is
// restored so the retry repeats the repair.
func (b *ReplicatedBackend) applyPass(r *replica) (err error) {
	// Apply passes run with no incoming request, so their traces root at
	// the process-wide background sink (nil when tracing is off). Idle
	// passes never call End, so only passes that shipped records or failed
	// file a trace — the poll loop does not flood the ring buffer.
	ctx := b.ctx
	var sp *provtrace.Span
	var appliedBefore int64
	if st := provtrace.Default(); st != nil {
		appliedBefore = r.appliedRecs.Load()
		ctx, sp = st.StartRoot(b.ctx, "repl:apply")
		defer func() {
			n := r.appliedRecs.Load() - appliedBefore
			if n == 0 && err == nil {
				return
			}
			sp.SetAttr("records", strconv.FormatInt(n, 10))
			sp.SetErr(err)
			sp.End()
		}()
	}
	if !r.hwValid {
		if err := b.recoverHighWater(r); err != nil {
			return err
		}
	}
	fromTid, fromLoc := r.hwTid, r.hwLoc
	var dedupUpTo *provstore.Record // old high-water key during a rewind
	if rw := r.rewindTo.Swap(0); rw > 0 && rw <= r.hwTid {
		old := provstore.Record{Tid: r.hwTid, Loc: r.hwLoc}
		dedupUpTo = &old
		// Strictly after (rw, forest root) is every record of tid rw and
		// beyond — record locations are never the root.
		fromTid, fromLoc = rw, path.Path{}
		defer func() {
			if err != nil {
				r.setRewind(rw) // the repair did not finish; retry it
			}
		}()
	}
	buf := make([]provstore.Record, 0, b.opts.ApplyBatch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		start := time.Now()
		if err := r.store.Append(ctx, buf); err != nil {
			return err
		}
		b.applyDur.Observe(time.Since(start).Nanoseconds())
		last := buf[len(buf)-1]
		if last.Tid > r.hwTid || (last.Tid == r.hwTid && r.hwLoc.Compare(last.Loc) < 0) {
			r.hwTid, r.hwLoc = last.Tid, last.Loc
			r.appliedTid.Store(last.Tid)
		}
		r.appliedRecs.Add(int64(len(buf)))
		buf = buf[:0]
		return nil
	}
	scan := b.primary.ScanAllAfter
	if b.opts.Verify {
		scan = b.verifiedScanAfter
	}
	for rec, serr := range scan(ctx, fromTid, fromLoc) {
		if serr != nil {
			return serr
		}
		if dedupUpTo != nil {
			if provstore.CompareTidLoc(rec, *dedupUpTo) <= 0 {
				if _, ok, lerr := r.store.Lookup(ctx, rec.Tid, rec.Loc); lerr != nil {
					return lerr
				} else if ok {
					continue // the replica already holds it
				}
			} else {
				dedupUpTo = nil // past the old high water: back to pure append
			}
		}
		if len(buf) >= b.opts.ApplyBatch && rec.Tid != buf[len(buf)-1].Tid {
			if err := flush(); err != nil {
				return err
			}
		}
		buf = append(buf, rec)
	}
	return flush()
}

// verifiedScanAfter adapts the primary's proven stream to the plain record
// stream applyPass consumes: the stream's root is anchored against the last
// root a pass shipped under (anchorShipRoot), then each record's inclusion
// proof is checked against it before the record crosses to a replica. A bad
// proof or an unanchorable root fails the pass, so a tampered primary
// blocks shipping rather than propagating. Only sealed transactions appear
// in the proven stream, so a verified replica trails the primary by any
// still-open transaction until Flush seals it.
func (b *ReplicatedBackend) verifiedScanAfter(ctx context.Context, afterTid int64, afterLoc path.Path) iter.Seq2[provstore.Record, error] {
	auth := b.primary.(provauth.Authority) // checked in New
	return func(yield func(provstore.Record, error) bool) {
		var root provauth.Root
		anchored := false
		for pr, err := range auth.ScanAllProven(ctx, afterTid, afterLoc) {
			if err != nil {
				yield(provstore.Record{}, err)
				return
			}
			if !anchored || pr.Root != root {
				if aerr := b.anchorShipRoot(ctx, auth, pr.Root); aerr != nil {
					b.verifyFailures.Add(1)
					yield(provstore.Record{}, aerr)
					return
				}
				root, anchored = pr.Root, true
			}
			if verr := pr.Verify(); verr != nil {
				b.verifyFailures.Add(1)
				yield(provstore.Record{}, fmt.Errorf("provrepl: shipping %d %s: %w", pr.Rec.Tid, pr.Rec.Loc, verr))
				return
			}
			b.verifiedRecs.Add(1)
			if !yield(pr.Rec, nil) {
				return
			}
		}
	}
}

// anchorShipRoot admits one pass's claimed root: the first root seen is
// trusted (the handle-lifetime analogue of a pinned client's
// trust-on-first-use), and every later root must extend the last accepted
// one over a consistency proof fetched from — but verified against — the
// primary. Without this, verified shipping from a remote primary would only
// check each pass's self-consistency: a primary that rewrote history and
// honestly re-proved everything against its regenerated tree would still
// ship cleanly. The consistency proof is what a rewritten tree cannot
// produce.
func (b *ReplicatedBackend) anchorShipRoot(ctx context.Context, auth provauth.Authority, root provauth.Root) error {
	b.shipRootMu.Lock()
	defer b.shipRootMu.Unlock()
	if !b.shipRootOk {
		b.shipRoot, b.shipRootOk = root, true
		return nil
	}
	last := b.shipRoot
	if root == last {
		return nil
	}
	var audit []provauth.Hash
	if root.Size > last.Size {
		var err error
		if audit, err = auth.Consistency(ctx, last.Size, root.Size); err != nil {
			return fmt.Errorf("provrepl: fetching consistency %d -> %d for the ship-root anchor: %w", last.Size, root.Size, err)
		}
	}
	if err := provauth.VerifyConsistency(last, root, audit); err != nil {
		return fmt.Errorf("provrepl: primary root %v does not extend the last shipped root %v: %w", root, last, err)
	}
	if root.Size > last.Size {
		b.shipRoot = root
	}
	return nil
}

// recoverHighWater computes the replica's high-water {Tid, Loc} mark from
// the replica itself: its largest transaction id, and the largest location
// within it (ScanTid streams in Loc order, so the last record carries it).
// This is what makes restart resume O(log n): the next applyPass seeks the
// primary to this key instead of re-reading (or re-shipping) the prefix the
// replica already holds.
func (b *ReplicatedBackend) recoverHighWater(r *replica) error {
	maxTid, err := r.store.MaxTid(b.ctx)
	if err != nil {
		return err
	}
	r.hwTid, r.hwLoc = 0, path.Path{}
	if maxTid > 0 {
		for rec, err := range r.store.ScanTid(b.ctx, maxTid) {
			if err != nil {
				return err
			}
			r.hwTid, r.hwLoc = rec.Tid, rec.Loc
		}
	}
	r.appliedTid.Store(r.hwTid)
	r.hwValid = true
	return nil
}
