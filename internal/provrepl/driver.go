package provrepl

import (
	"fmt"
	"time"

	"repro/internal/provstore"
)

// The replicated:// composite driver. The primary and each replica are
// themselves DSNs (URL-escape them when they carry their own ?params), so
// replication composes with every registered scheme: a durable rel://
// primary with mem:// read replicas, a cpdb:// network primary with a local
// standby, even replicated-over-sharded.
//
//	replicated://?primary=DSN&replica=DSN[&replica=DSN…]
//	             [&read=primary|any]   read routing (default primary)
//	             [&lag=N]              ReadAny staleness bound in tids (default 0:
//	                                   only fully caught-up replicas serve reads)
//	             [&poll=500ms]         applier idle poll / error backoff
//	             [&verify=1]           ship over the primary's authenticated
//	                                   stream; the primary DSN must be a
//	                                   verified:// store
func init() {
	provstore.RegisterDriver("replicated", provstore.DriverFunc(openDSN))
}

func openDSN(dsn provstore.DSN) (provstore.Backend, error) {
	if dsn.Path != "" {
		return nil, fmt.Errorf("provstore: dsn %s: replicated stores have no path; name stores via ?primary=…&replica=…", dsn)
	}
	if err := dsn.RejectUnknownParams("primary", "replica", "read", "lag", "poll", "verify"); err != nil {
		return nil, err
	}
	primaryDSN := dsn.Param("primary")
	if primaryDSN == "" {
		return nil, fmt.Errorf("provstore: dsn %s: replicated:// needs a primary=DSN parameter", dsn)
	}
	replicaDSNs := dsn.Params["replica"]
	if len(replicaDSNs) == 0 {
		return nil, fmt.Errorf("provstore: dsn %s: replicated:// needs at least one replica=DSN parameter", dsn)
	}

	var opts Options
	switch dsn.Param("read") {
	case "", "primary":
		opts.Read = ReadPrimary
	case "any":
		opts.Read = ReadAny
	default:
		return nil, fmt.Errorf("provstore: dsn %s: read=%q is not primary or any", dsn, dsn.Param("read"))
	}
	lag, err := dsn.IntParam("lag", 0)
	if err != nil {
		return nil, err
	}
	if lag < 0 {
		return nil, fmt.Errorf("provstore: dsn %s: lag must be >= 0", dsn)
	}
	opts.LagBound = int64(lag)
	if v := dsn.Param("poll"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("provstore: dsn %s: poll %q is not a positive duration", dsn, v)
		}
		opts.Poll = d
	}
	switch dsn.Param("verify") {
	case "", "0":
	case "1":
		opts.Verify = true
	default:
		return nil, fmt.Errorf("provstore: dsn %s: verify=%q is not 0 or 1", dsn, dsn.Param("verify"))
	}

	var opened []provstore.Backend
	fail := func(err error) (provstore.Backend, error) {
		for _, s := range opened {
			provstore.Close(s) //nolint:errcheck // already failing; release what opened
		}
		return nil, err
	}
	primary, err := provstore.OpenDSN(primaryDSN)
	if err != nil {
		return fail(fmt.Errorf("provstore: dsn %s: primary: %w", dsn, err))
	}
	opened = append(opened, primary)
	replicas := make([]provstore.Backend, 0, len(replicaDSNs))
	for i, rd := range replicaDSNs {
		r, err := provstore.OpenDSN(rd)
		if err != nil {
			return fail(fmt.Errorf("provstore: dsn %s: replica %d: %w", dsn, i, err))
		}
		opened = append(opened, r)
		replicas = append(replicas, r)
	}
	rb, err := New(primary, replicas, opts)
	if err != nil {
		return fail(err)
	}
	return rb, nil
}
