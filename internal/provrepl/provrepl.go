// Package provrepl implements the replicated provenance store: a composite
// backend that writes synchronously to a primary and ships committed records
// asynchronously to any number of replicas, each driven by its own applier
// goroutine resuming from the replica's high-water {Tid, Loc} mark via the
// seekable ScanAllAfter cursor.
//
// The paper's provenance relation (Figure 5) is append-only and immutable,
// keyed by {Tid, Loc} — which makes asynchronous log-shipping replication
// unusually easy to reason about: a replica is always a prefix of the
// primary's (Tid, Loc)-ordered ScanAll stream, and catching up after a crash
// or a lag spike is one seeked cursor from the last key the replica holds.
// There is no log to maintain beyond the relation itself.
//
// Reads route by policy: ReadPrimary sends everything to the primary
// (replicas are pure standbys for failover and offline analytics);
// ReadAny fans reads out round-robin across replicas whose staleness is
// within the configured LagBound, falling back to the primary when no
// replica qualifies or a replica read fails mid-flight. With LagBound 0 a
// replica serves reads only while fully caught up with everything this
// handle has acknowledged, so fan-out reads are indistinguishable from
// primary reads.
//
// Ordering contract: log-shipping by keyset resume assumes the primary's
// records become visible in (Tid, Loc) order — true for the session ingest
// path, where transaction ids are allocated and committed monotonically.
// Commits that arrive out of tid order *through this handle* (sessions with
// partitioned tid ranges sharing one backend, racing tracker lanes) are
// detected at acknowledgement time and repaired: the appliers rewind to the
// out-of-order tid and re-ship from there, skipping records the replica
// already holds. What the handle cannot see it cannot repair: a writer
// committing an old tid directly to the primary outside this handle, or a
// crash between acknowledging an out-of-order commit and shipping it,
// leaves that tid stranded behind the replicas' high-water marks — route
// writers through the replicated handle, or rebuild the replica. See
// DESIGN.md §4.
package provrepl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/path"
	"repro/internal/provauth"
	"repro/internal/provobs"
	"repro/internal/provstore"
	"repro/internal/provtrace"
)

// ReadPolicy selects where a replicated backend serves reads from.
type ReadPolicy int

const (
	// ReadPrimary routes every read to the primary; replicas are pure
	// standbys. This is the default: replication adds durability and
	// failover without changing any observable behavior.
	ReadPrimary ReadPolicy = iota
	// ReadAny fans reads out round-robin across replicas within LagBound,
	// failing over to the primary when none qualifies or a replica errors.
	ReadAny
)

// String returns the DSN spelling of the policy.
func (p ReadPolicy) String() string {
	if p == ReadAny {
		return "any"
	}
	return "primary"
}

// Options configures a replicated backend.
type Options struct {
	// Read selects the read routing policy (default ReadPrimary).
	Read ReadPolicy
	// LagBound is the maximum transaction-id staleness a replica may show
	// and still serve ReadAny reads. 0 (the default) means a replica only
	// serves reads while fully caught up with every append this handle has
	// acknowledged — fan-out reads then never observe a torn or stale
	// prefix.
	LagBound int64
	// Poll is how often an idle applier re-checks the primary for records
	// that arrived outside this handle (another client writing to the same
	// cpdbd primary, say), and the floor of the retry backoff after an
	// apply error. Default 500ms.
	Poll time.Duration
	// ApplyBatch caps how many records an applier ships to its replica in
	// one Append during catch-up. Chunks are cut only at transaction
	// boundaries, so a replica's content stays transaction-atomic whenever
	// the primary's appends are (a single oversized transaction ships as
	// one chunk). Default 512.
	ApplyBatch int
	// CloseTimeout bounds the final catch-up drain Close performs so
	// acknowledged records reach the replicas before the appliers stop. A
	// dead replica cannot wedge shutdown past this. Default 30s.
	CloseTimeout time.Duration
	// Verify makes the appliers ship over the primary's authenticated
	// stream: every record crossing to a replica carries a Merkle inclusion
	// proof, checked against the primary's signed-off root before the
	// replica sees it, and each pass's root is anchored — the first root is
	// trusted (for the handle's lifetime), every later one must extend it
	// over a verified consistency proof, so a primary that rewrites history
	// and regenerates its tree cannot re-prove the lie past the anchor.
	// Requires a primary that implements provauth.Authority (open it via
	// verified://). A proof or anchor failure fails the pass — the applier
	// goes unhealthy and retries — so a tampered primary blocks shipping
	// instead of propagating to replicas. Only sealed transactions appear
	// in the proven stream, so verified replicas trail the primary by any
	// still-open transaction until Flush.
	Verify bool
}

func (o Options) withDefaults() Options {
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.ApplyBatch <= 0 {
		o.ApplyBatch = 512
	}
	if o.CloseTimeout <= 0 {
		o.CloseTimeout = 30 * time.Second
	}
	return o
}

// A ReplicatedBackend is a provstore.Backend over one primary and N replica
// stores: writes go to the primary synchronously and are acknowledged once
// the primary has them; per-replica applier goroutines ship committed
// records to the replicas asynchronously; reads route by Options.Read. It
// is safe for concurrent use.
//
// Lifecycle: Flush pushes the primary's buffered writes down and nudges the
// appliers; Close flushes, drains the appliers (bounded by CloseTimeout),
// stops them, and closes every store that holds external resources.
type ReplicatedBackend struct {
	primary  provstore.Backend
	replicas []*replica
	opts     Options

	// shipped is the write version: it increments on every acknowledged
	// append through this handle. A replica whose synced version has
	// reached it holds everything acknowledged so far.
	shipped    atomic.Int64
	shippedTid atomic.Int64 // max acknowledged transaction id
	shipMu     sync.Mutex   // serializes noteShipped's read-then-update

	laggedReads atomic.Int64 // ReadAny reads served by a stale replica
	rr          atomic.Uint64

	verifiedRecs   atomic.Int64 // records shipped with a verified proof (Verify mode)
	verifyFailures atomic.Int64 // proof/root checks that failed during shipping (Verify mode)

	// shipRoot is the last primary root a verified pass shipped under,
	// trusted on first use and advanced only over verified consistency
	// proofs — the anchor that stops a primary (in particular a remote
	// cpdb:// one, whose roots arrive as unauthenticated claims) from
	// rewriting history between passes and re-proving everything against
	// the rewritten tree. Guarded by shipRootMu; shared by all appliers.
	shipRootMu sync.Mutex
	shipRoot   provauth.Root
	shipRootOk bool

	obs      *provobs.Registry
	applyDur *provobs.Histogram

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool
}

var (
	_ provstore.Backend        = (*ReplicatedBackend)(nil)
	_ provstore.GroupCommitter = (*ReplicatedBackend)(nil)
	_ provstore.Flusher        = (*ReplicatedBackend)(nil)
	_ provstore.Gauger         = (*ReplicatedBackend)(nil)
	_ io.Closer                = (*ReplicatedBackend)(nil)
)

// errClosed reports use of a closed replicated backend.
var errClosed = errors.New("provrepl: backend is closed")

// New builds a replicated backend over the given primary and replica stores
// and starts one applier goroutine per replica. Replica stores must be
// dedicated to this backend (the appliers assume nothing else writes them).
func New(primary provstore.Backend, replicas []provstore.Backend, opts Options) (*ReplicatedBackend, error) {
	if primary == nil {
		return nil, errors.New("provrepl: New requires a primary")
	}
	if len(replicas) == 0 {
		return nil, errors.New("provrepl: New requires at least one replica")
	}
	for i, r := range replicas {
		if r == nil {
			return nil, fmt.Errorf("provrepl: New replica %d is nil", i)
		}
	}
	if opts.Verify {
		if _, ok := primary.(provauth.Authority); !ok {
			return nil, errors.New("provrepl: Options.Verify needs a primary that serves proofs; open it via verified://")
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &ReplicatedBackend{
		primary: primary,
		opts:    opts.withDefaults(),
		obs:     provobs.NewRegistry(),
		ctx:     ctx,
		cancel:  cancel,
	}
	b.applyDur = b.obs.Histogram("cpdb_repl_apply_batch_duration_seconds",
		"Time to apply one shipped record batch on a replica.", provobs.UnitSeconds)
	for i, store := range replicas {
		r := &replica{idx: i, store: store, wake: make(chan struct{}, 1)}
		r.synced.Store(-1) // behind until the first full drain
		b.replicas = append(b.replicas, r)
		b.wg.Add(1)
		go b.applier(r)
	}
	return b, nil
}

// ObsRegistries implements provobs.Source: this layer's metrics (apply
// batch latency) plus whatever the primary exposes.
func (b *ReplicatedBackend) ObsRegistries() []*provobs.Registry {
	return append([]*provobs.Registry{b.obs}, provobs.SourceRegistries(b.primary)...)
}

// Primary exposes the primary store (for tests and size accounting).
func (b *ReplicatedBackend) Primary() provstore.Backend { return b.primary }

// NumReplicas returns the number of replicas.
func (b *ReplicatedBackend) NumReplicas() int { return len(b.replicas) }

// Replica exposes one replica store (for tests and verification dumps).
func (b *ReplicatedBackend) Replica(i int) provstore.Backend { return b.replicas[i].store }

// ReadPolicy returns the configured read routing policy.
func (b *ReplicatedBackend) ReadPolicy() ReadPolicy { return b.opts.Read }

// LagBound returns the configured staleness bound.
func (b *ReplicatedBackend) LagBound() int64 { return b.opts.LagBound }

// LaggedReads returns how many ReadAny reads were served by a replica that
// trailed the primary's acknowledged transaction id (possible only with
// LagBound > 0). The CLI surfaces a note after -dump when this is non-zero.
func (b *ReplicatedBackend) LaggedReads() int64 { return b.laggedReads.Load() }

// --- writes ------------------------------------------------------------------

// Append implements Backend: the batch is appended to the primary
// synchronously and acknowledged as soon as the primary has it; shipping to
// replicas happens asynchronously.
func (b *ReplicatedBackend) Append(ctx context.Context, recs []provstore.Record) error {
	if b.closed.Load() {
		return errClosed
	}
	_, sp := provtrace.Start(ctx, "repl:append-primary")
	if sp != nil {
		sp.SetAttr("records", strconv.Itoa(len(recs)))
	}
	err := b.primary.Append(ctx, recs)
	sp.SetErr(err)
	sp.End()
	if err != nil {
		return err
	}
	b.noteShipped(tidRangeOf(recs))
	return nil
}

// AppendBatch implements GroupCommitter: the whole group reaches the
// primary with one durability round trip when it supports that.
func (b *ReplicatedBackend) AppendBatch(ctx context.Context, batches ...[]provstore.Record) error {
	if b.closed.Load() {
		return errClosed
	}
	if gc, ok := b.primary.(provstore.GroupCommitter); ok {
		if err := gc.AppendBatch(ctx, batches...); err != nil {
			return err
		}
	} else {
		for _, batch := range batches {
			if err := b.primary.Append(ctx, batch); err != nil {
				return err
			}
		}
	}
	var minTid, maxTid int64
	for _, batch := range batches {
		lo, hi := tidRangeOf(batch)
		if lo > 0 && (minTid == 0 || lo < minTid) {
			minTid = lo
		}
		if hi > maxTid {
			maxTid = hi
		}
	}
	b.noteShipped(minTid, maxTid)
	return nil
}

func tidRangeOf(recs []provstore.Record) (minTid, maxTid int64) {
	for _, r := range recs {
		if minTid == 0 || r.Tid < minTid {
			minTid = r.Tid
		}
		if r.Tid > maxTid {
			maxTid = r.Tid
		}
	}
	return minTid, maxTid
}

// noteShipped records an acknowledged append and nudges the appliers. A
// batch whose smallest tid does not exceed the largest tid already
// acknowledged arrived out of tid order — the keyset appliers would skip
// past it — so every replica is told to rewind to that tid and re-ship
// from there (skipping what it already holds). The in-order fast path
// (every session) never takes the branch.
func (b *ReplicatedBackend) noteShipped(minTid, maxTid int64) {
	b.shipMu.Lock()
	prev := b.shippedTid.Load()
	if maxTid > prev {
		b.shippedTid.Store(maxTid)
	}
	if minTid > 0 && minTid <= prev {
		for _, r := range b.replicas {
			r.setRewind(minTid)
		}
	}
	b.shipped.Add(1)
	b.shipMu.Unlock()
	b.wakeAll()
}

func (b *ReplicatedBackend) wakeAll() {
	for _, r := range b.replicas {
		r.kick()
	}
}

// --- read routing ------------------------------------------------------------

// pickReplica chooses the next eligible replica under the read policy, or
// nil when reads belong on the primary. Eligibility: the applier is healthy
// and the replica's staleness is within LagBound (with bound 0, the replica
// must hold everything acknowledged so far).
func (b *ReplicatedBackend) pickReplica() *replica {
	if b.opts.Read != ReadAny {
		return nil
	}
	shipped := b.shipped.Load()
	shippedTid := b.shippedTid.Load()
	start := int(b.rr.Add(1))
	now := time.Now().UnixNano()
	for i := 0; i < len(b.replicas); i++ {
		r := b.replicas[(start+i)%len(b.replicas)]
		if !r.healthy.Load() || now < r.demotedUntil.Load() {
			continue
		}
		if b.opts.LagBound <= 0 {
			if r.synced.Load() >= shipped {
				return r
			}
			continue
		}
		if shippedTid-r.appliedTid.Load() <= b.opts.LagBound {
			if r.appliedTid.Load() < shippedTid {
				b.laggedReads.Add(1)
			}
			return r
		}
	}
	return nil
}

// demote takes a replica out of the read rotation after a failed read and
// wakes its applier. A clean apply pass restores the healthy flag, but the
// rotation holds the replica out for a poll interval regardless — a store
// whose reads fail while its appends still succeed would otherwise flap in
// and out of rotation on every applier pass.
func (b *ReplicatedBackend) demote(r *replica) {
	r.healthy.Store(false)
	r.demotedUntil.Store(time.Now().Add(b.opts.Poll).UnixNano())
	r.kick()
}

// Lookup implements Backend, failing over to the primary when the chosen
// replica errors (caller cancellation is returned, not failed over).
func (b *ReplicatedBackend) Lookup(ctx context.Context, tid int64, loc path.Path) (provstore.Record, bool, error) {
	if r := b.pickReplica(); r != nil {
		rec, ok, err := r.store.Lookup(ctx, tid, loc)
		if err == nil || ctx.Err() != nil {
			return rec, ok, err
		}
		b.demote(r)
	}
	return b.primary.Lookup(ctx, tid, loc)
}

// NearestAncestor implements Backend.
func (b *ReplicatedBackend) NearestAncestor(ctx context.Context, tid int64, loc path.Path) (provstore.Record, bool, error) {
	if r := b.pickReplica(); r != nil {
		rec, ok, err := r.store.NearestAncestor(ctx, tid, loc)
		if err == nil || ctx.Err() != nil {
			return rec, ok, err
		}
		b.demote(r)
	}
	return b.primary.NearestAncestor(ctx, tid, loc)
}

// routedScan serves a scan from an eligible replica, restarting on the
// primary if the replica's cursor fails before yielding anything. A failure
// after records have been yielded is terminal (the cursor contract), since
// an unordered scan cannot be resumed without replaying what was delivered;
// the (Tid, Loc)-ordered ScanAll family resumes instead (scanAllRouted).
func (b *ReplicatedBackend) routedScan(ctx context.Context, scan func(provstore.Backend) iter.Seq2[provstore.Record, error]) iter.Seq2[provstore.Record, error] {
	r := b.pickReplica()
	if r == nil {
		return provtrace.Cursor(ctx, "repl:read", scan(b.primary),
			provtrace.Attr{K: "source", V: "primary"})
	}
	return provtrace.Cursor(ctx, "repl:read", func(yield func(provstore.Record, error) bool) {
		emitted := false
		for rec, err := range scan(r.store) {
			if err != nil {
				if ctx.Err() != nil {
					yield(provstore.Record{}, err)
					return
				}
				b.demote(r)
				if emitted {
					yield(provstore.Record{}, err)
					return
				}
				for rec2, err2 := range scan(b.primary) {
					if !yield(rec2, err2) || err2 != nil {
						return
					}
				}
				return
			}
			emitted = true
			if !yield(rec, nil) {
				return
			}
		}
	}, provtrace.Attr{K: "source", V: "replica"})
}

// ScanTid implements Backend.
func (b *ReplicatedBackend) ScanTid(ctx context.Context, tid int64) iter.Seq2[provstore.Record, error] {
	return b.routedScan(ctx, func(s provstore.Backend) iter.Seq2[provstore.Record, error] { return s.ScanTid(ctx, tid) })
}

// ScanLoc implements Backend.
func (b *ReplicatedBackend) ScanLoc(ctx context.Context, loc path.Path) iter.Seq2[provstore.Record, error] {
	return b.routedScan(ctx, func(s provstore.Backend) iter.Seq2[provstore.Record, error] { return s.ScanLoc(ctx, loc) })
}

// ScanLocPrefix implements Backend.
func (b *ReplicatedBackend) ScanLocPrefix(ctx context.Context, prefix path.Path) iter.Seq2[provstore.Record, error] {
	return b.routedScan(ctx, func(s provstore.Backend) iter.Seq2[provstore.Record, error] { return s.ScanLocPrefix(ctx, prefix) })
}

// ScanLocWithAncestors implements Backend.
func (b *ReplicatedBackend) ScanLocWithAncestors(ctx context.Context, loc path.Path) iter.Seq2[provstore.Record, error] {
	return b.routedScan(ctx, func(s provstore.Backend) iter.Seq2[provstore.Record, error] { return s.ScanLocWithAncestors(ctx, loc) })
}

// scanAllRouted serves the (Tid, Loc)-ordered table from an eligible
// replica with full failover: a replica cursor failing mid-stream resumes
// on the primary via ScanAllAfter from the last key already delivered, so
// the consumer sees one uninterrupted ordered stream across the switch.
func (b *ReplicatedBackend) scanAllRouted(ctx context.Context, hasAfter bool, tid int64, loc path.Path) iter.Seq2[provstore.Record, error] {
	start := func(s provstore.Backend) iter.Seq2[provstore.Record, error] {
		if hasAfter {
			return s.ScanAllAfter(ctx, tid, loc)
		}
		return s.ScanAll(ctx)
	}
	r := b.pickReplica()
	if r == nil {
		return provtrace.Cursor(ctx, "repl:scan", start(b.primary),
			provtrace.Attr{K: "source", V: "primary"})
	}
	return provtrace.Cursor(ctx, "repl:scan", func(yield func(provstore.Record, error) bool) {
		var last provstore.Record
		emitted := false
		for rec, err := range start(r.store) {
			if err != nil {
				if ctx.Err() != nil {
					yield(provstore.Record{}, err)
					return
				}
				b.demote(r)
				resume := start(b.primary)
				if emitted {
					resume = b.primary.ScanAllAfter(ctx, last.Tid, last.Loc)
				}
				for rec2, err2 := range resume {
					if !yield(rec2, err2) || err2 != nil {
						return
					}
				}
				return
			}
			last, emitted = rec, true
			if !yield(rec, nil) {
				return
			}
		}
	}, provtrace.Attr{K: "source", V: "replica"})
}

// ScanAll implements Backend.
func (b *ReplicatedBackend) ScanAll(ctx context.Context) iter.Seq2[provstore.Record, error] {
	return b.scanAllRouted(ctx, false, 0, path.Path{})
}

// ScanAllAfter implements Backend.
func (b *ReplicatedBackend) ScanAllAfter(ctx context.Context, tid int64, loc path.Path) iter.Seq2[provstore.Record, error] {
	return b.scanAllRouted(ctx, true, tid, loc)
}

// Tids implements Backend.
func (b *ReplicatedBackend) Tids(ctx context.Context) ([]int64, error) {
	if r := b.pickReplica(); r != nil {
		tids, err := r.store.Tids(ctx)
		if err == nil || ctx.Err() != nil {
			return tids, err
		}
		b.demote(r)
	}
	return b.primary.Tids(ctx)
}

// MaxTid implements Backend.
func (b *ReplicatedBackend) MaxTid(ctx context.Context) (int64, error) {
	if r := b.pickReplica(); r != nil {
		t, err := r.store.MaxTid(ctx)
		if err == nil || ctx.Err() != nil {
			return t, err
		}
		b.demote(r)
	}
	return b.primary.MaxTid(ctx)
}

// Count implements Backend.
func (b *ReplicatedBackend) Count(ctx context.Context) (int, error) {
	if r := b.pickReplica(); r != nil {
		n, err := r.store.Count(ctx)
		if err == nil || ctx.Err() != nil {
			return n, err
		}
		b.demote(r)
	}
	return b.primary.Count(ctx)
}

// Bytes implements Backend.
func (b *ReplicatedBackend) Bytes(ctx context.Context) (int64, error) {
	if r := b.pickReplica(); r != nil {
		n, err := r.store.Bytes(ctx)
		if err == nil || ctx.Err() != nil {
			return n, err
		}
		b.demote(r)
	}
	return b.primary.Bytes(ctx)
}

// --- lifecycle ---------------------------------------------------------------

// Flush implements Flusher: it pushes the primary's buffered writes down
// and nudges the appliers. It does not wait for the replicas — shipping
// stays asynchronous; use WaitForReplicas for a barrier.
func (b *ReplicatedBackend) Flush() error {
	return b.FlushContext(context.Background())
}

// FlushContext implements provstore.ContextFlusher.
func (b *ReplicatedBackend) FlushContext(ctx context.Context) error {
	err := provstore.FlushContext(ctx, b.primary)
	b.wakeAll()
	return err
}

// WaitForReplicas blocks until every replica has applied everything
// acknowledged before the call, or ctx expires. A replica stuck on a
// persistent apply error holds the wait until the deadline.
func (b *ReplicatedBackend) WaitForReplicas(ctx context.Context) error {
	target := b.shipped.Load()
	b.wakeAll()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		done := true
		for _, r := range b.replicas {
			if r.synced.Load() < target {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close implements io.Closer: the primary's buffers flush, the appliers get
// a bounded final drain so acknowledged records reach the replicas, then
// they stop and every store holding external resources is closed. The first
// error wins, flush errors foremost (acknowledged records that could not be
// persisted matter more than a failed file release).
func (b *ReplicatedBackend) Close() error {
	if !b.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := provstore.Flush(b.primary)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), b.opts.CloseTimeout)
	b.WaitForReplicas(drainCtx) //nolint:errcheck // best effort: a dead replica must not wedge shutdown
	cancelDrain()
	b.cancel()
	b.wg.Wait()
	for _, r := range b.replicas {
		if cerr := provstore.Close(r.store); err == nil {
			err = cerr
		}
	}
	if c, ok := b.primary.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Gauges implements provstore.Gauger: per-replica staleness and progress,
// surfaced through /v1/stats when a replicated backend sits behind cpdbd.
//
//	repl.replicas          configured replica count
//	repl.shipped_tid       max transaction id acknowledged on the primary
//	repl.lagged_reads      ReadAny reads served by a stale replica
//	repl.applied_tid.<i>   replica i's high-water transaction id
//	repl.lag.<i>           repl.shipped_tid - repl.applied_tid.<i>, floored at 0
//	repl.healthy.<i>       1 while replica i's applier is caught up and erroring-free
//
// With Options.Verify on, two more gauges track the authenticated stream:
//
//	repl.verified_recs     records shipped after their inclusion proof checked out
//	repl.verify_failures   proof or root-anchor checks that failed (shipping
//	                       stalls while non-zero)
func (b *ReplicatedBackend) Gauges() map[string]int64 {
	shippedTid := b.shippedTid.Load()
	out := map[string]int64{
		"repl.replicas":     int64(len(b.replicas)),
		"repl.shipped_tid":  shippedTid,
		"repl.lagged_reads": b.laggedReads.Load(),
	}
	if b.opts.Verify {
		out["repl.verified_recs"] = b.verifiedRecs.Load()
		out["repl.verify_failures"] = b.verifyFailures.Load()
	}
	for _, r := range b.replicas {
		applied := r.appliedTid.Load()
		lag := shippedTid - applied
		if lag < 0 {
			lag = 0
		}
		i := fmt.Sprint(r.idx)
		out["repl.applied_tid."+i] = applied
		out["repl.lag."+i] = lag
		healthy := int64(0)
		if r.healthy.Load() {
			healthy = 1
		}
		out["repl.healthy."+i] = healthy
	}
	return out
}
