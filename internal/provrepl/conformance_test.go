package provrepl_test

import (
	"testing"

	"repro/internal/provstore"
	"repro/internal/provtest"
)

// TestConformance runs the shared backend conformance suite
// (internal/provtest) against a replicated store with read fan-out under
// the default zero lag bound, where replica reads must be
// indistinguishable from primary reads — so the whole cursor contract
// (ordering, seeks, early break, cancellation) has to survive the
// composite driver's routing and failover plumbing.
func TestConformance(t *testing.T) {
	provtest.Conformance(t, func(t *testing.T) provstore.Backend {
		b, err := provstore.OpenDSN("replicated://?primary=mem://&replica=mem://&replica=mem://&read=any")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { provstore.Close(b) }) //nolint:errcheck // mem-backed teardown
		return b
	})
}
