package provrepl

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/path"
	"repro/internal/provstore"
)

// fastOpts keeps test appliers snappy.
func fastOpts(o Options) Options {
	if o.Poll == 0 {
		o.Poll = 5 * time.Millisecond
	}
	return o
}

func mustNew(t *testing.T, primary provstore.Backend, replicas []provstore.Backend, o Options) *ReplicatedBackend {
	t.Helper()
	b, err := New(primary, replicas, fastOpts(o))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// tidBatch builds one transaction's worth of insert records.
func tidBatch(tid int64, n int) []provstore.Record {
	recs := make([]provstore.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, provstore.Record{
			Tid: tid,
			Op:  provstore.OpInsert,
			Loc: path.New("T", fmt.Sprintf("c%d", tid), fmt.Sprintf("n%02d", i)),
		})
	}
	return recs
}

func collectAll(t *testing.T, b provstore.Backend) []provstore.Record {
	t.Helper()
	recs, err := provstore.CollectScan(b.ScanAll(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func waitCaughtUp(t *testing.T, b *ReplicatedBackend) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.WaitForReplicas(ctx); err != nil {
		t.Fatalf("replicas never caught up: %v", err)
	}
}

// TestReplicasConvergeToPrimary: after WaitForReplicas, every replica's
// ScanAll is byte-identical to the primary's — the log-shipping invariant.
func TestReplicasConvergeToPrimary(t *testing.T) {
	ctx := context.Background()
	primary := provstore.NewMemBackend()
	reps := []provstore.Backend{provstore.NewMemBackend(), provstore.NewMemBackend()}
	b := mustNew(t, primary, reps, Options{ApplyBatch: 8})
	for tid := int64(1); tid <= 25; tid++ {
		if err := b.Append(ctx, tidBatch(tid, 7)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, b)
	want := collectAll(t, primary)
	if len(want) != 25*7 {
		t.Fatalf("primary holds %d records, want %d", len(want), 25*7)
	}
	for i, r := range reps {
		if got := collectAll(t, r); !reflect.DeepEqual(got, want) {
			t.Errorf("replica %d diverged: %d records vs primary's %d", i, len(got), len(want))
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(ctx, tidBatch(99, 1)); !errors.Is(err, errClosed) {
		t.Fatalf("Append after Close = %v, want errClosed", err)
	}
}

// gateStore wraps a replica store with switchable fault injection: appends
// and reads can be made to fail, and appends can be slowed, so tests can
// kill an applier mid-apply and heal it again.
type gateStore struct {
	provstore.Backend
	failAppends atomic.Bool
	failReads   atomic.Bool
	appendDelay atomic.Int64 // nanoseconds
	appends     atomic.Int64 // records appended through the gate
}

var errGate = errors.New("provrepl_test: gate closed")

func (g *gateStore) Append(ctx context.Context, recs []provstore.Record) error {
	if g.failAppends.Load() {
		return errGate
	}
	if d := g.appendDelay.Load(); d > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Duration(d)):
		}
	}
	if err := g.Backend.Append(ctx, recs); err != nil {
		return err
	}
	g.appends.Add(int64(len(recs)))
	return nil
}

func (g *gateStore) Lookup(ctx context.Context, tid int64, loc path.Path) (provstore.Record, bool, error) {
	if g.failReads.Load() {
		return provstore.Record{}, false, errGate
	}
	return g.Backend.Lookup(ctx, tid, loc)
}

func (g *gateStore) Count(ctx context.Context) (int, error) {
	if g.failReads.Load() {
		return 0, errGate
	}
	return g.Backend.Count(ctx)
}

// TestReplicaRestartResumesFromHighWater is the crash/restart acceptance
// case: an applier dies mid-apply leaving the replica a strict prefix of
// the primary; a fresh ReplicatedBackend over the same stores recomputes
// the high-water {Tid, Loc} mark from the replica and ships exactly the
// missing suffix — converging byte-identically without re-sending the
// prefix the replica already holds.
func TestReplicaRestartResumesFromHighWater(t *testing.T) {
	ctx := context.Background()
	primary := provstore.NewMemBackend()
	repMem := provstore.NewMemBackend()
	gate := &gateStore{Backend: repMem}

	// Small apply chunks so the kill lands between applier flushes.
	b1 := mustNew(t, primary, []provstore.Backend{gate}, Options{ApplyBatch: 4})
	for tid := int64(1); tid <= 10; tid++ {
		if err := b1.Append(ctx, tidBatch(tid, 5)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, b1)

	// Kill mid-apply: the gate rejects replica appends, then more commits
	// land on the primary, then the handle is torn down with a drain
	// window too short to matter — the replica is left behind.
	gate.failAppends.Store(true)
	for tid := int64(11); tid <= 20; tid++ {
		if err := b1.Append(ctx, tidBatch(tid, 5)); err != nil {
			t.Fatal(err)
		}
	}
	b1.opts.CloseTimeout = 20 * time.Millisecond
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	behind, err := repMem.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if behind != 50 {
		t.Fatalf("replica holds %d records after the kill, want the 50 applied before it", behind)
	}

	// Restart: a fresh handle over the same stores. Its applier must
	// recover the high-water mark from the replica's own content and ship
	// only the missing records.
	shippedBefore := gate.appends.Load()
	gate.failAppends.Store(false)
	b2 := mustNew(t, primary, []provstore.Backend{gate}, Options{ApplyBatch: 64})
	waitCaughtUp(t, b2)
	want := collectAll(t, primary)
	if got := collectAll(t, repMem); !reflect.DeepEqual(got, want) {
		t.Fatalf("replica did not converge after restart: %d records vs primary's %d", len(got), len(want))
	}
	if shipped := gate.appends.Load() - shippedBefore; shipped != 50 {
		t.Errorf("restart shipped %d records, want exactly the 50 missing (high-water resume, not a re-send)", shipped)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadAnyLagZeroNeverTorn: under read=any with lag=0, concurrent
// readers scanning through the replicated handle must only ever observe
// whole transactions — never a torn prefix where a transaction's records
// are partially applied — and always in (Tid, Loc) order.
func TestReadAnyLagZeroNeverTorn(t *testing.T) {
	const (
		tids   = 40
		perTid = 7
	)
	ctx := context.Background()
	primary := provstore.NewMemBackend()
	reps := []provstore.Backend{provstore.NewMemBackend(), provstore.NewMemBackend()}
	// ApplyBatch below perTid forces the appliers to choose chunk cuts;
	// they must still cut only at transaction boundaries.
	b := mustNew(t, primary, reps, Options{Read: ReadAny, LagBound: 0, ApplyBatch: 3})
	defer b.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var torn atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				perSeen := make(map[int64]int)
				var prev provstore.Record
				n := 0
				for rec, err := range b.ScanAll(ctx) {
					if err != nil {
						t.Errorf("ScanAll: %v", err)
						return
					}
					if n > 0 && provstore.CompareTidLoc(prev, rec) >= 0 {
						t.Errorf("ScanAll out of order: %v after %v", rec, prev)
						return
					}
					prev = rec
					n++
					perSeen[rec.Tid]++
				}
				for tid, got := range perSeen {
					if got != perTid {
						torn.Add(1)
						t.Errorf("observed torn transaction %d: %d of %d records", tid, got, perTid)
						return
					}
				}
			}
		}()
	}
	for tid := int64(1); tid <= tids; tid++ {
		if err := b.Append(ctx, tidBatch(tid, perTid)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, b)
	close(stop)
	wg.Wait()
	if torn.Load() > 0 {
		t.Fatalf("%d torn reads observed", torn.Load())
	}
	// And the converged replicas are byte-identical to the primary.
	want := collectAll(t, primary)
	for i, r := range reps {
		if got := collectAll(t, r); !reflect.DeepEqual(got, want) {
			t.Errorf("replica %d diverged after the run", i)
		}
	}
}

// TestReadFailoverToPrimary: a replica failing a read is demoted and the
// call transparently retried on the primary; once the replica heals, its
// applier puts it back into the rotation.
func TestReadFailoverToPrimary(t *testing.T) {
	ctx := context.Background()
	primary := provstore.NewMemBackend()
	gate := &gateStore{Backend: provstore.NewMemBackend()}
	// A long poll keeps the demotion cooldown window comfortably wider
	// than the assertions that run inside it.
	b := mustNew(t, primary, []provstore.Backend{gate}, Options{Read: ReadAny, LagBound: 0, Poll: 300 * time.Millisecond})
	defer b.Close()
	if err := b.Append(ctx, tidBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, b)

	// Healthy: the replica serves the read.
	loc := path.New("T", "c1", "n00")
	if _, ok, err := b.Lookup(ctx, 1, loc); err != nil || !ok {
		t.Fatalf("Lookup via replica = %v, %v", ok, err)
	}

	// Break the replica's reads: the same lookup must still succeed (via
	// the primary) and the replica must leave the rotation.
	gate.failReads.Store(true)
	if _, ok, err := b.Lookup(ctx, 1, loc); err != nil || !ok {
		t.Fatalf("Lookup with failing replica = %v, %v (want primary failover)", ok, err)
	}
	if r := b.pickReplica(); r != nil {
		t.Fatal("failed replica still in the read rotation")
	}
	if _, err := b.Count(ctx); err != nil {
		t.Fatalf("Count with demoted replica: %v", err)
	}

	// Heal: once the cooldown passes and the applier completes a clean
	// pass, the replica rejoins.
	gate.failReads.Store(false)
	b.wakeAll()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && b.pickReplica() == nil {
		time.Sleep(5 * time.Millisecond)
	}
	if b.pickReplica() == nil {
		t.Fatal("healed replica never rejoined the rotation")
	}
}

// TestLagBoundRouting: with lag=N a healthy replica trailing the primary by
// more than N tids leaves the read rotation; one within N serves reads and
// is counted as a lagged read.
func TestLagBoundRouting(t *testing.T) {
	ctx := context.Background()
	run := func(lagBound int64) (*ReplicatedBackend, *gateStore) {
		primary := provstore.NewMemBackend()
		gate := &gateStore{Backend: provstore.NewMemBackend()}
		// Slow replica appends (not failures): the applier stays healthy
		// while visibly behind. ApplyBatch 2 means one delay per tid, so
		// the lag window stays open for seconds.
		b := mustNew(t, primary, []provstore.Backend{gate}, Options{Read: ReadAny, LagBound: lagBound, ApplyBatch: 2, Poll: time.Second})
		if err := b.Append(ctx, tidBatch(1, 2)); err != nil {
			t.Fatal(err)
		}
		waitCaughtUp(t, b)
		gate.appendDelay.Store(int64(400 * time.Millisecond))
		for tid := int64(2); tid <= 6; tid++ {
			if err := b.Append(ctx, tidBatch(tid, 2)); err != nil {
				t.Fatal(err)
			}
		}
		return b, gate
	}

	// Bound 3, lag 5: the replica must be out of the rotation even though
	// its applier is healthy, and the gauges must name the lag.
	b, gate := run(3)
	if g := b.Gauges(); g["repl.shipped_tid"] != 6 || g["repl.lag.0"] < 4 {
		t.Errorf("gauges = %v, want shipped_tid=6 and lag.0 >= 4", g)
	}
	if r := b.pickReplica(); r != nil {
		t.Error("replica lagging past the bound still in the rotation")
	}
	gate.appendDelay.Store(0)
	waitCaughtUp(t, b)
	if g := b.Gauges(); g["repl.lag.0"] != 0 {
		t.Errorf("after catch-up repl.lag.0 = %d, want 0", g["repl.lag.0"])
	}
	b.Close()

	// Bound 10, lag 5: the stale replica serves the read and the lagged
	// read is counted — the signal behind the CLI's -dump note.
	b, gate = run(10)
	if r := b.pickReplica(); r == nil {
		t.Error("replica within the bound not in the rotation")
	}
	if _, _, err := b.Lookup(ctx, 1, path.New("T", "c1", "n00")); err != nil {
		t.Errorf("Lookup via lagging replica: %v", err)
	}
	if b.LaggedReads() == 0 {
		t.Error("lagged reads not counted")
	}
	gate.appendDelay.Store(0)
	b.Close()
}

// TestCloseMidApplyLeaksNoGoroutines: tearing down the backend while an
// applier is busy (slow replica appends, records still queued) must stop
// every goroutine.
func TestCloseMidApplyLeaksNoGoroutines(t *testing.T) {
	ctx := context.Background()
	base := runtime.NumGoroutine()
	primary := provstore.NewMemBackend()
	gate := &gateStore{Backend: provstore.NewMemBackend()}
	gate.appendDelay.Store(int64(20 * time.Millisecond))
	b := mustNew(t, primary, []provstore.Backend{gate}, Options{ApplyBatch: 2, CloseTimeout: 10 * time.Millisecond})
	for tid := int64(1); tid <= 30; tid++ {
		if err := b.Append(ctx, tidBatch(tid, 4)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(5 * time.Millisecond) // let the applier get into a pass
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > base {
		t.Fatalf("goroutines leaked: %d now vs %d before", now, base)
	}
}

// TestScanAllMidStreamFailover: a replica cursor dying mid-ScanAll resumes
// on the primary from the last delivered key — the consumer sees one
// uninterrupted, complete, ordered stream.
func TestScanAllMidStreamFailover(t *testing.T) {
	ctx := context.Background()
	primary := provstore.NewMemBackend()
	rep := provstore.NewMemBackend()
	gate := &cutAfterStore{Backend: rep, cutAfter: 10}
	b := mustNew(t, primary, []provstore.Backend{gate}, Options{Read: ReadAny, LagBound: 0})
	defer b.Close()
	for tid := int64(1); tid <= 6; tid++ {
		if err := b.Append(ctx, tidBatch(tid, 5)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, b)
	gate.arm.Store(true)
	got, err := provstore.CollectScan(b.ScanAll(ctx))
	if err != nil {
		t.Fatalf("ScanAll with mid-stream replica failure: %v", err)
	}
	want := collectAll(t, primary)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("failover stream returned %d records, want %d identical to primary", len(got), len(want))
	}
	if gate.cuts.Load() == 0 {
		t.Fatal("the replica cursor was never cut; the test exercised nothing")
	}
}

// cutAfterStore yields cutAfter records of a ScanAll then fails the cursor
// in-stream, once armed.
type cutAfterStore struct {
	provstore.Backend
	arm      atomic.Bool
	cuts     atomic.Int64
	cutAfter int
}

func (c *cutAfterStore) ScanAll(ctx context.Context) iter.Seq2[provstore.Record, error] {
	inner := c.Backend.ScanAll(ctx)
	if !c.arm.Load() {
		return inner
	}
	return func(yield func(provstore.Record, error) bool) {
		n := 0
		for rec, err := range inner {
			if err != nil {
				yield(provstore.Record{}, err)
				return
			}
			if n == c.cutAfter {
				c.cuts.Add(1)
				yield(provstore.Record{}, errGate)
				return
			}
			n++
			if !yield(rec, nil) {
				return
			}
		}
	}
}

// TestOutOfOrderCommitRewinds: a commit whose tid sorts below the shipped
// high-water mark (sessions with partitioned tid ranges sharing one handle)
// is detected at acknowledgement and repaired — the applier rewinds to the
// out-of-order tid and ships exactly the missing records, skipping what the
// replica already holds, and the high-water mark never regresses.
func TestOutOfOrderCommitRewinds(t *testing.T) {
	ctx := context.Background()
	primary := provstore.NewMemBackend()
	gate := &gateStore{Backend: provstore.NewMemBackend()}
	b := mustNew(t, primary, []provstore.Backend{gate}, Options{ApplyBatch: 4})
	defer b.Close()
	for _, tid := range []int64{2, 3, 4, 6, 7} {
		if err := b.Append(ctx, tidBatch(tid, 3)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, b)
	if n := gate.appends.Load(); n != 15 {
		t.Fatalf("shipped %d records before the out-of-order commit, want 15", n)
	}

	// Tid 5 lands after tids 6 and 7 have shipped: without the rewind the
	// keyset applier would skip past it forever.
	if err := b.Append(ctx, tidBatch(5, 3)); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, b)
	want := collectAll(t, primary)
	got := collectAll(t, gate.Backend)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replica did not repair the out-of-order commit: %d records vs primary's %d", len(got), len(want))
	}
	if n := gate.appends.Load(); n != 18 {
		t.Errorf("total shipped = %d records, want 18 (the repair ships only the missing tid, no re-send)", n)
	}
	if g := b.Gauges(); g["repl.applied_tid.0"] != 7 || g["repl.lag.0"] != 0 {
		t.Errorf("gauges after repair = %v, want applied_tid.0=7 lag.0=0 (high water must not regress)", g)
	}
}
