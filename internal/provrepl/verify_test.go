package provrepl

import (
	"context"
	"iter"
	"net/url"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/path"
	"repro/internal/provauth"
	"repro/internal/provstore"
	"repro/internal/provtest"
)

func mustAuth(t *testing.T, inner provstore.Backend) *provauth.AuthBackend {
	t.Helper()
	a, err := provauth.New(inner)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// waitRecs polls until the store holds exactly n records. WaitForReplicas
// is not the right barrier under Verify: a pass that ran between Append and
// Flush legitimately saw nothing (the transaction was still open), so the
// synced version can reach the shipped version before the records do.
func waitRecs(t *testing.T, b provstore.Backend, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := len(collectAll(t, b))
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("store holds %d records, want %d", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestVerifyRequiresAuthority: Verify over a plain store is a construction
// error, not a latent applier failure.
func TestVerifyRequiresAuthority(t *testing.T) {
	_, err := New(provstore.NewMemBackend(), []provstore.Backend{provstore.NewMemBackend()}, Options{Verify: true})
	if err == nil || !strings.Contains(err.Error(), "verified://") {
		t.Fatalf("New with Verify over a plain store: err = %v, want a verified:// hint", err)
	}
}

// TestVerifiedShipping: with an honest authenticated primary, the proven
// stream converges replicas exactly like the plain one, and the verified
// gauges account for every shipped record.
func TestVerifiedShipping(t *testing.T) {
	ctx := context.Background()
	primary := mustAuth(t, provstore.NewMemBackend())
	rep := provstore.NewMemBackend()
	b := mustNew(t, primary, []provstore.Backend{rep}, Options{Verify: true, ApplyBatch: 8})
	defer b.Close()
	for tid := int64(1); tid <= 5; tid++ {
		if err := b.Append(ctx, tidBatch(tid, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// Seal the last transaction: the proven stream carries only sealed
	// transactions, so without this the replica would (correctly) trail by
	// tid 5 forever.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	waitRecs(t, rep, 20)
	want := collectAll(t, primary)
	got := collectAll(t, rep)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replica diverged from primary:\n got %+v\nwant %+v", got, want)
	}
	g := b.Gauges()
	if g["repl.verified_recs"] < 20 {
		t.Errorf("repl.verified_recs = %d, want >= 20", g["repl.verified_recs"])
	}
	if g["repl.verify_failures"] != 0 {
		t.Errorf("repl.verify_failures = %d, want 0", g["repl.verify_failures"])
	}
}

// TestVerifiedShippingHorizon: an open transaction is invisible to the
// proven stream, so a verified replica holds only the sealed prefix until
// Flush seals the tail.
func TestVerifiedShippingHorizon(t *testing.T) {
	ctx := context.Background()
	primary := mustAuth(t, provstore.NewMemBackend())
	rep := provstore.NewMemBackend()
	b := mustNew(t, primary, []provstore.Backend{rep}, Options{Verify: true})
	defer b.Close()
	if err := b.Append(ctx, tidBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(ctx, tidBatch(2, 3)); err != nil { // seals tid 1, opens tid 2
		t.Fatal(err)
	}
	waitRecs(t, rep, 3)
	// Give the applier a few more passes: tid 2 must stay invisible.
	time.Sleep(20 * time.Millisecond)
	if n := len(collectAll(t, rep)); n != 3 {
		t.Fatalf("replica holds %d records with tid 2 still open, want 3", n)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	waitRecs(t, rep, 6)
}

// TestVerifiedShippingBlocksTamper: when the primary's stored bytes diverge
// from its Merkle tree, proofs stop verifying and shipping stalls — the
// corruption never reaches the replica, and the failure gauge records it.
func TestVerifiedShippingBlocksTamper(t *testing.T) {
	ctx := context.Background()
	tamper := provtest.NewTamper(provstore.NewMemBackend(), nil)
	primary := mustAuth(t, tamper)
	rep := provstore.NewMemBackend()
	b := mustNew(t, primary, []provstore.Backend{rep}, Options{Verify: true})
	defer b.Close()
	if err := b.Append(ctx, tidBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	waitRecs(t, rep, 3)

	tamper.Arm(true)
	if err := b.Append(ctx, tidBatch(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for b.Gauges()["repl.verify_failures"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("repl.verify_failures never rose with an armed tamper layer")
		}
		time.Sleep(time.Millisecond)
	}
	// The bad records must not have crossed: the proven stream re-proves
	// from the replica's high-water mark, and tid 2's first record fails.
	if n := len(collectAll(t, rep)); n != 3 {
		t.Fatalf("replica holds %d records under tamper, want the 3 shipped before", n)
	}
	if b.replicas[0].healthy.Load() {
		t.Error("replica still marked healthy while shipping is blocked")
	}

	// Disarm: the retry loop repairs itself and shipping resumes.
	tamper.Arm(false)
	waitRecs(t, rep, 6)
}

// swapAuth is a primary whose Authority can be swapped out from under the
// appliers — the stand-in for a remote primary that rewrote history and
// rebuilt its tree. Everything the swapped-in authority serves is
// internally consistent: valid proofs against its own root. Only the
// root-anchor consistency check can tell it is not the same log.
type swapAuth struct {
	provstore.Backend
	cur atomic.Pointer[provauth.AuthBackend]
}

func newSwapAuth(a *provauth.AuthBackend) *swapAuth {
	s := &swapAuth{Backend: a}
	s.cur.Store(a)
	return s
}

// Flush must forward explicitly: the embedded Backend interface hides the
// optional Flusher surface.
func (s *swapAuth) Flush() error { return s.cur.Load().Flush() }

func (s *swapAuth) Root(ctx context.Context) (provauth.Root, error) {
	return s.cur.Load().Root(ctx)
}

func (s *swapAuth) RootAt(ctx context.Context, tid int64) (provauth.Root, error) {
	return s.cur.Load().RootAt(ctx, tid)
}

func (s *swapAuth) Prove(ctx context.Context, tid int64, loc path.Path) (provauth.Proof, provauth.Root, error) {
	return s.cur.Load().Prove(ctx, tid, loc)
}

func (s *swapAuth) ProveAt(ctx context.Context, tid int64, loc path.Path, atSize uint64) (provauth.Proof, error) {
	return s.cur.Load().ProveAt(ctx, tid, loc, atSize)
}

func (s *swapAuth) Consistency(ctx context.Context, oldSize, newSize uint64) ([]provauth.Hash, error) {
	return s.cur.Load().Consistency(ctx, oldSize, newSize)
}

func (s *swapAuth) ConsistencyTids(ctx context.Context, oldTid, newTid int64) (provauth.ConsistencyProof, error) {
	return s.cur.Load().ConsistencyTids(ctx, oldTid, newTid)
}

func (s *swapAuth) ScanAllProven(ctx context.Context, afterTid int64, afterLoc path.Path) iter.Seq2[provauth.ProvenRecord, error] {
	return s.cur.Load().ScanAllProven(ctx, afterTid, afterLoc)
}

// TestRewrittenPrimaryBlocksShipping: a primary that rewrote history and
// honestly re-proved everything against its regenerated tree passes every
// per-record check — but its root cannot extend the root the first
// verified pass anchored, so shipping stalls instead of propagating the
// rewrite. This is what separates the ship-root anchor from per-pass
// self-consistency.
func TestRewrittenPrimaryBlocksShipping(t *testing.T) {
	ctx := context.Background()
	honest := mustAuth(t, provstore.NewMemBackend())
	primary := newSwapAuth(honest)
	rep := provstore.NewMemBackend()
	b := mustNew(t, primary, []provstore.Backend{rep}, Options{Verify: true})
	defer b.Close()
	if err := b.Append(ctx, tidBatch(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	waitRecs(t, rep, 3) // the first verified pass anchors honest's root

	// The rewrite: same transaction shape, one record's history changed,
	// plus a fresh sealed tid 2 — its own tree, larger and internally
	// consistent, proving every record it serves.
	rewritten := mustAuth(t, provstore.NewMemBackend())
	recs := tidBatch(1, 3)
	recs[0].Op = provstore.OpDelete // history differs by one byte
	if err := rewritten.Append(ctx, recs); err != nil {
		t.Fatal(err)
	}
	if err := rewritten.Append(ctx, tidBatch(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := rewritten.Flush(); err != nil {
		t.Fatal(err)
	}
	primary.cur.Store(rewritten)

	deadline := time.Now().Add(10 * time.Second)
	for b.Gauges()["repl.verify_failures"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("repl.verify_failures never rose against a rewritten primary")
		}
		time.Sleep(time.Millisecond)
	}
	// Nothing from the rewritten tree crossed to the replica.
	got, want := collectAll(t, rep), collectAll(t, honest)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replica diverged under a rewritten primary:\n got %+v\nwant %+v", got, want)
	}
	if b.replicas[0].healthy.Load() {
		t.Error("replica still marked healthy while shipping is blocked")
	}
}

// TestVerifyDSN: the composite driver's verify=1 plumbs through to Options
// and demands a verified:// primary.
func TestVerifyDSN(t *testing.T) {
	good := "replicated://?primary=" + url.QueryEscape("verified://?inner=mem://") + "&replica=mem://&verify=1&poll=5ms"
	bk, err := provstore.OpenDSN(good)
	if err != nil {
		t.Fatalf("OpenDSN(%s): %v", good, err)
	}
	rb := bk.(*ReplicatedBackend)
	if !rb.opts.Verify {
		t.Error("verify=1 did not set Options.Verify")
	}
	if _, ok := rb.Gauges()["repl.verify_failures"]; !ok {
		t.Error("verified backend does not surface repl.verify_failures")
	}
	if err := rb.Close(); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []string{
		"replicated://?primary=mem://&replica=mem://&verify=1",
		"replicated://?primary=mem://&replica=mem://&verify=yes",
	} {
		if _, err := provstore.OpenDSN(bad); err == nil {
			t.Errorf("OpenDSN(%s) succeeded, want error", bad)
		}
	}
}
