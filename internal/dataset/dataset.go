// Package dataset generates the synthetic stand-ins for the paper's
// experimental databases:
//
//   - a MiMI-like protein-interaction target (the paper used a 27.3 MB copy
//     of MiMI stored in Timber), with molecule entries carrying nested PTM,
//     citation and interaction subtrees;
//   - an OrganelleDB-like source (the paper used 6 MB of OrganelleDB in
//     MySQL) of protein-localization records, each a parent with three leaf
//     fields — exactly the "subtrees of size four" the experiments copy.
//
// Generation is deterministic given the seed, so experiments are exactly
// repeatable. The biology is synthetic; the experiments depend only on the
// tree shapes and sizes.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/relstore"
	"repro/internal/tree"
)

// Deterministic vocabulary for plausible-looking identifiers.
var (
	organisms  = []string{"H.sapiens", "M.musculus", "S.cerevisiae", "D.melanogaster", "C.elegans", "A.thaliana"}
	organelles = []string{"nucleus", "mitochondrion", "golgi", "er", "cytosol", "peroxisome", "vacuole", "membrane"}
	ptmKinds   = []string{"phosphorylation", "glycosylation", "acetylation", "ubiquitination", "methylation"}
	journals   = []string{"NAR", "JBC", "Cell", "PNAS", "Bioinformatics"}
	geneSyll   = []string{"ab", "cd", "kin", "rho", "gly", "myo", "tub", "act", "pol", "hex"}
)

func geneName(r *rand.Rand, i int) string {
	return fmt.Sprintf("%s%s%d", geneSyll[r.Intn(len(geneSyll))], geneSyll[r.Intn(len(geneSyll))], i)
}

// MiMIConfig sizes the MiMI-like target.
type MiMIConfig struct {
	Entries      int // number of molecule entries
	MaxPTMs      int // PTM subtrees per entry (0..MaxPTMs)
	MaxCitations int // citation subtrees per entry
	MaxInteracts int // interaction references per entry
	Seed         int64
}

// DefaultMiMI is a laptop-scale default (a few thousand nodes); experiments
// scale Entries up.
var DefaultMiMI = MiMIConfig{Entries: 200, MaxPTMs: 3, MaxCitations: 3, MaxInteracts: 4, Seed: 1}

// GenMiMI builds the MiMI-like target tree: molecule{i} → {name, organism,
// ptm{j}{...}, citation{j}{...}, interaction{j}}.
func GenMiMI(cfg MiMIConfig) *tree.Node {
	r := rand.New(rand.NewSource(cfg.Seed))
	root := tree.NewTree()
	for i := 0; i < cfg.Entries; i++ {
		entry := tree.NewTree()
		entry.AddChild("name", tree.NewLeaf(geneName(r, i)))
		entry.AddChild("organism", tree.NewLeaf(organisms[r.Intn(len(organisms))]))
		for j, n := 0, r.Intn(cfg.MaxPTMs+1); j < n; j++ {
			ptm := tree.NewTree()
			ptm.AddChild("kind", tree.NewLeaf(ptmKinds[r.Intn(len(ptmKinds))]))
			ptm.AddChild("site", tree.NewLeaf(fmt.Sprintf("S%d", r.Intn(800))))
			entry.AddChild(fmt.Sprintf("ptm{%d}", j), ptm)
		}
		for j, n := 0, r.Intn(cfg.MaxCitations+1); j < n; j++ {
			cit := tree.NewTree()
			cit.AddChild("pmid", tree.NewLeaf(fmt.Sprintf("%d", 10000000+r.Intn(9000000))))
			cit.AddChild("journal", tree.NewLeaf(journals[r.Intn(len(journals))]))
			entry.AddChild(fmt.Sprintf("citation{%d}", j), cit)
		}
		for j, n := 0, r.Intn(cfg.MaxInteracts+1); j < n; j++ {
			entry.AddChild(fmt.Sprintf("interaction{%d}", j),
				tree.NewLeaf(fmt.Sprintf("mol%d", r.Intn(cfg.Entries))))
		}
		root.AddChild(fmt.Sprintf("mol%d", i), entry)
	}
	return root
}

// OrganelleConfig sizes the OrganelleDB-like source.
type OrganelleConfig struct {
	Proteins int
	Seed     int64
}

// DefaultOrganelle is a laptop-scale default.
var DefaultOrganelle = OrganelleConfig{Proteins: 500, Seed: 2}

// GenOrganelleTree builds the OrganelleDB-like source as a tree view:
// protein{i} → {name, localization, organism} — a parent with exactly three
// leaf children, the size-four subtree the experiments copy.
func GenOrganelleTree(cfg OrganelleConfig) *tree.Node {
	r := rand.New(rand.NewSource(cfg.Seed))
	root := tree.NewTree()
	for i := 0; i < cfg.Proteins; i++ {
		p := tree.NewTree()
		p.AddChild("name", tree.NewLeaf(geneName(r, i)))
		p.AddChild("localization", tree.NewLeaf(organelles[r.Intn(len(organelles))]))
		p.AddChild("organism", tree.NewLeaf(organisms[r.Intn(len(organisms))]))
		root.AddChild(fmt.Sprintf("protein{%d}", i), p)
	}
	return root
}

// OrganelleSchema is the relational schema of the OrganelleDB-like source
// table, keyed by protein id.
func OrganelleSchema() relstore.TableSchema {
	return relstore.TableSchema{
		Name: "proteins",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.TStr},
			{Name: "name", Type: relstore.TStr},
			{Name: "localization", Type: relstore.TStr},
			{Name: "organism", Type: relstore.TStr},
		},
		Key: []string{"id"},
	}
}

// LoadOrganelleDB populates a relstore database with the OrganelleDB-like
// source relation, mirroring GenOrganelleTree row for row (the wrapped
// four-level view of the relational data equals the tree view, minus the id
// column, which becomes the key label).
func LoadOrganelleDB(db *relstore.DB, cfg OrganelleConfig) error {
	tbl, err := db.CreateTable(OrganelleSchema())
	if err != nil {
		return err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Proteins; i++ {
		row := relstore.Row{
			fmt.Sprintf("protein{%d}", i),
			geneName(r, i),
			organelles[r.Intn(len(organelles))],
			organisms[r.Intn(len(organisms))],
		}
		if err := tbl.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// SourceSubtreeRoots lists the copyable size-four subtree roots of a source
// tree generated by GenOrganelleTree (its top-level children), as labels.
func SourceSubtreeRoots(src *tree.Node) []string {
	return src.Labels()
}
