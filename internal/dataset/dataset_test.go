package dataset_test

import (
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/path"
	"repro/internal/relstore"
	"repro/internal/tree"
	"repro/internal/wrapper"
)

func TestGenMiMIShape(t *testing.T) {
	cfg := dataset.MiMIConfig{Entries: 50, MaxPTMs: 3, MaxCitations: 3, MaxInteracts: 4, Seed: 1}
	root := dataset.GenMiMI(cfg)
	if root.NumChildren() != 50 {
		t.Fatalf("entries = %d", root.NumChildren())
	}
	// Every entry has name and organism leaves; nested subtrees are
	// well-formed (walk would fail on malformed labels).
	for _, l := range root.Labels() {
		e := root.Child(l)
		if !e.HasChild("name") || !e.HasChild("organism") {
			t.Fatalf("entry %s missing mandatory fields", l)
		}
	}
	// Deterministic.
	again := dataset.GenMiMI(cfg)
	if !root.Equal(again) {
		t.Error("GenMiMI not deterministic")
	}
	other := dataset.GenMiMI(dataset.MiMIConfig{Entries: 50, MaxPTMs: 3, MaxCitations: 3, MaxInteracts: 4, Seed: 99})
	if root.Equal(other) {
		t.Error("different seeds should differ")
	}
}

func TestGenOrganelleShape(t *testing.T) {
	cfg := dataset.OrganelleConfig{Proteins: 30, Seed: 2}
	root := dataset.GenOrganelleTree(cfg)
	if root.NumChildren() != 30 {
		t.Fatalf("proteins = %d", root.NumChildren())
	}
	// Every protein is the size-four subtree the experiments copy.
	for _, l := range root.Labels() {
		p := root.Child(l)
		if p.Size() != 4 || p.NumChildren() != 3 {
			t.Fatalf("protein %s has size %d (%d children)", l, p.Size(), p.NumChildren())
		}
	}
	if roots := dataset.SourceSubtreeRoots(root); len(roots) != 30 {
		t.Errorf("SourceSubtreeRoots = %d", len(roots))
	}
	if !root.Equal(dataset.GenOrganelleTree(cfg)) {
		t.Error("GenOrganelleTree not deterministic")
	}
}

// TestRelationalViewMatchesTree: the wrapped relational OrganelleDB exposes
// the same entries as the tree generator (the substitution DESIGN.md
// documents).
func TestRelationalViewMatchesTree(t *testing.T) {
	cfg := dataset.OrganelleConfig{Proteins: 25, Seed: 5}
	db, err := relstore.Create(filepath.Join(t.TempDir(), "org.rel"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := dataset.LoadOrganelleDB(db, cfg); err != nil {
		t.Fatal(err)
	}
	src := wrapper.NewRelSource("O", db)
	view, err := src.Tree()
	if err != nil {
		t.Fatal(err)
	}
	tbl := view.Child("proteins")
	if tbl == nil || tbl.NumChildren() != 25 {
		t.Fatalf("view = %v", view.Labels())
	}
	want := dataset.GenOrganelleTree(cfg)
	for _, l := range want.Labels() {
		got := tbl.Child(l)
		if got == nil {
			t.Fatalf("view missing %s", l)
		}
		if !got.Equal(want.Child(l)) {
			t.Errorf("view entry %s = %s, want %s", l, got, want.Child(l))
		}
		if got.Size() != 4 {
			t.Errorf("view entry %s has size %d, want 4", l, got.Size())
		}
	}
	// Point access through the wrapper.
	n, err := src.CopyNode(path.MustParse("O/proteins/protein{3}/name"))
	if err != nil || !n.IsLeaf() {
		t.Errorf("CopyNode leaf: %v, %v", n, err)
	}
	// Schema sanity.
	if dataset.OrganelleSchema().Name != "proteins" {
		t.Error("schema name wrong")
	}
	// Double load fails (table exists).
	if err := dataset.LoadOrganelleDB(db, cfg); err == nil {
		t.Error("double load should fail")
	}
}

func TestDefaults(t *testing.T) {
	if dataset.DefaultMiMI.Entries <= 0 || dataset.DefaultOrganelle.Proteins <= 0 {
		t.Error("defaults must be positive")
	}
	root := dataset.GenMiMI(dataset.DefaultMiMI)
	if root.Size() < dataset.DefaultMiMI.Entries {
		t.Error("default MiMI too small")
	}
	var _ *tree.Node = root
}
