package provtrace

import (
	"context"
	"iter"
	"strconv"
)

// Cursor wraps a streaming cursor in a span covering its drain: the span
// opens when iteration starts (not when the cursor is built — a
// scatter-gather constructs cursors eagerly but pulls them later), closes
// when the stream ends or the consumer breaks, counts clean records into a
// "records" attribute and marks the span failed on an in-stream error.
// When no recorder is installed on ctx the input cursor is returned
// untouched, so the off cost is one context lookup per cursor.
func Cursor[T any](ctx context.Context, name string, in iter.Seq2[T, error], attrs ...Attr) iter.Seq2[T, error] {
	if !Active(ctx) {
		return in
	}
	return func(yield func(T, error) bool) {
		_, sp := Start(ctx, name)
		sp.Attrs = append(sp.Attrs, attrs...)
		n := 0
		defer func() {
			sp.SetAttr("records", strconv.Itoa(n))
			sp.End()
		}()
		for v, err := range in {
			if err != nil {
				sp.SetErr(err)
			} else {
				n++
			}
			if !yield(v, err) {
				return
			}
		}
	}
}
