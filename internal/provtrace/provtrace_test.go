package provtrace

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanTreeConcurrent ends one span per "shard" from parallel goroutines
// into one recorder — the shape of a sharded scatter-gather — and checks no
// span is lost and every child parents under the scatter's root. Run with
// -race this is the data-race regression for the recorder.
func TestSpanTreeConcurrent(t *testing.T) {
	rec := NewRecorder("t1", "")
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := Start(ctx, "scatter")

	const shards = 32
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := Start(ctx, "shard:scan")
			sp.SetAttr("shard", strconv.Itoa(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()

	spans := rec.Spans()
	if len(spans) != shards+1 {
		t.Fatalf("recorded %d spans, want %d", len(spans), shards+1)
	}
	var children int
	for _, sp := range spans {
		if sp.Name == "shard:scan" {
			children++
			if sp.ParentID != root.SpanID {
				t.Errorf("shard span parents under %q, want root %q", sp.ParentID, root.SpanID)
			}
			if sp.TraceID != "t1" {
				t.Errorf("shard span trace id %q, want t1", sp.TraceID)
			}
		}
	}
	if children != shards {
		t.Fatalf("found %d shard spans, want %d", children, shards)
	}

	roots := BuildTree(spans)
	if len(roots) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(roots))
	}
	if got := len(roots[0].Children); got != shards {
		t.Fatalf("root has %d children, want %d", got, shards)
	}
}

// TestNoRecorderIsFree pins the off path: no recorder means nil spans,
// empty ids, and an untouched context.
func TestNoRecorderIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatalf("Start without a recorder returned a live span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without a recorder replaced the context")
	}
	if Active(ctx) {
		t.Fatalf("Active true without a recorder")
	}
	if tid, sid := IDs(ctx); tid != "" || sid != "" {
		t.Fatalf("IDs without a recorder = %q, %q", tid, sid)
	}
	// All nil-span methods must be safe no-ops.
	sp.SetAttr("k", "v")
	sp.SetErr(errors.New("boom"))
	sp.End()
}

// record runs one minimal trace into st and returns whether it was stored.
func record(st *Store, traceID string, fail bool, rootDur time.Duration) bool {
	rec := NewRecorder(traceID, "")
	ctx := WithRecorder(context.Background(), rec)
	if rootDur > 0 {
		// A pre-measured root: Emit backdates the span, so the trace's root
		// duration is rootDur without the test sleeping.
		Emit(ctx, "root", time.Now().Add(-rootDur), rootDur)
	} else {
		_, sp := Start(ctx, "root")
		if fail {
			sp.SetErr(errors.New("boom"))
		}
		sp.End()
	}
	return st.Finish(rec, false)
}

// TestSamplingAlwaysKeepsSlowAndError: at ratio 0 nothing ordinary is
// stored, but error and slow traces always are.
func TestSamplingAlwaysKeepsSlowAndError(t *testing.T) {
	st := NewStore(16, 0, 100*time.Millisecond)
	if record(st, "fast", false, 0) {
		t.Fatalf("ratio 0 stored an ordinary trace")
	}
	if !record(st, "err", true, 0) {
		t.Fatalf("ratio 0 dropped an error trace")
	}
	if !record(st, "slow", false, time.Second) {
		t.Fatalf("ratio 0 dropped a slow trace")
	}
	if got := st.Get("slow"); got == nil || !got.Slow {
		t.Fatalf("slow trace not flagged: %+v", got)
	}
	if got := st.Get("err"); got == nil || !got.Err {
		t.Fatalf("error trace not flagged: %+v", got)
	}
	if st.Get("fast") != nil {
		t.Fatalf("dropped trace still retrievable")
	}
}

// TestForcedKeepBypassesSampling: a continued trace (forced) is stored even
// at ratio 0 — the outer daemon already holds the other half.
func TestForcedKeepBypassesSampling(t *testing.T) {
	st := NewStore(4, 0, 0)
	rec := NewRecorder("cont", "remote-span")
	ctx := WithRecorder(context.Background(), rec)
	_, sp := Start(ctx, "server:query")
	sp.End()
	if !st.Finish(rec, true) {
		t.Fatalf("forced trace was sampled away")
	}
	got := st.Get("cont")
	if got == nil {
		t.Fatalf("forced trace not stored")
	}
	if got.Root != "server:query" {
		t.Fatalf("root %q, want server:query", got.Root)
	}
}

// TestRingEvictionOrder: the buffer is FIFO — filling past capacity evicts
// the oldest stored trace, and List walks newest first.
func TestRingEvictionOrder(t *testing.T) {
	st := NewStore(2, 1, 0)
	for _, id := range []string{"t1", "t2", "t3"} {
		if !record(st, id, false, 0) {
			t.Fatalf("ratio 1 dropped trace %s", id)
		}
	}
	if st.Get("t1") != nil {
		t.Fatalf("oldest trace t1 survived eviction")
	}
	if st.Get("t2") == nil || st.Get("t3") == nil {
		t.Fatalf("newer traces evicted")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	ts := st.List(0, 0)
	if len(ts) != 2 || ts[0].TraceID != "t3" || ts[1].TraceID != "t2" {
		ids := make([]string, len(ts))
		for i := range ts {
			ids[i] = ts[i].TraceID
		}
		t.Fatalf("List order %v, want [t3 t2]", ids)
	}
}

// TestMergeSameTraceID: two requests of one trace (one CLI recorder issuing
// several RPCs) merge into a single stored trace, never a duplicate — and
// the later half of a kept trace is never dropped, even at ratio 0.
func TestMergeSameTraceID(t *testing.T) {
	st := NewStore(4, 0, 0)
	if !record(st, "m", true, 0) { // error: stored despite ratio 0
		t.Fatalf("first half not stored")
	}
	if !record(st, "m", false, 0) { // ordinary second half: must merge, not drop
		t.Fatalf("second half of a stored trace dropped")
	}
	got := st.Get("m")
	if got == nil || len(got.Spans) != 2 {
		t.Fatalf("merged trace has %v spans, want 2", got)
	}
	if st.Len() != 1 {
		t.Fatalf("merge duplicated the ring entry: Len=%d", st.Len())
	}
}

// TestTreeSelfTime: a parent's self-time is its duration minus its
// children's, and the root's duration bounds the sum of child self-times.
func TestTreeSelfTime(t *testing.T) {
	now := time.Now()
	spans := []Span{
		{TraceID: "t", SpanID: "a", Name: "root", Start: now, Dur: 100 * time.Millisecond},
		{TraceID: "t", SpanID: "b", ParentID: "a", Name: "left", Start: now.Add(time.Millisecond), Dur: 30 * time.Millisecond},
		{TraceID: "t", SpanID: "c", ParentID: "a", Name: "right", Start: now.Add(2 * time.Millisecond), Dur: 50 * time.Millisecond},
	}
	roots := BuildTree(spans)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	if got := roots[0].Self; got != 20*time.Millisecond {
		t.Fatalf("root self-time %s, want 20ms", got)
	}
	var childSelf time.Duration
	for _, c := range roots[0].Children {
		childSelf += c.Self
	}
	if roots[0].Span.Dur < childSelf {
		t.Fatalf("root duration %s < sum of child self-times %s", roots[0].Span.Dur, childSelf)
	}

	tops := TopSelf(spans, 2)
	if len(tops) != 2 || tops[0].Name != "right" || tops[1].Name != "left" {
		t.Fatalf("TopSelf order wrong: %+v", tops)
	}
	if s := FormatTopSelf(tops); !strings.HasPrefix(s, "right=") {
		t.Fatalf("FormatTopSelf = %q", s)
	}

	var sb strings.Builder
	Render(&sb, roots)
	out := sb.String()
	for _, want := range []string{"root", "left", "right"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tree misses %q:\n%s", want, out)
		}
	}
}

// TestOrphanParentBecomesRoot: a span whose parent was recorded in another
// process renders as a local root instead of vanishing.
func TestOrphanParentBecomesRoot(t *testing.T) {
	spans := []Span{
		{TraceID: "t", SpanID: "x", ParentID: "remote", Name: "server:query", Dur: time.Millisecond},
	}
	roots := BuildTree(spans)
	if len(roots) != 1 || roots[0].Span.Name != "server:query" {
		t.Fatalf("orphan span not promoted to root: %+v", roots)
	}
}

// TestStartRootFilesOnEnd: StartRoot's span files the trace into the store
// when it ends, and a nil store is a free no-op.
func TestStartRootFilesOnEnd(t *testing.T) {
	st := NewStore(4, 1, 0)
	ctx, sp := st.StartRoot(context.Background(), "repl:apply")
	_, child := Start(ctx, "repl:read")
	child.End()
	sp.End()
	if st.Len() != 1 {
		t.Fatalf("StartRoot trace not filed: Len=%d", st.Len())
	}
	ts := st.List(0, 0)
	if ts[0].Root != "repl:apply" {
		t.Fatalf("background trace root %q, want repl:apply", ts[0].Root)
	}

	var nilStore *Store
	ctx2, sp2 := nilStore.StartRoot(context.Background(), "x")
	if sp2 != nil || Active(ctx2) {
		t.Fatalf("nil store StartRoot not free")
	}
}
