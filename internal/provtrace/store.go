package provtrace

import (
	"context"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/provobs"
)

// A Trace is one stored trace: the summary the list endpoint serves plus
// the flat span set the tree is built from. Spans from a chained daemon's
// half of the trace are merged in at read time, not stored here.
type Trace struct {
	TraceID string        `json:"trace_id"`
	Root    string        `json:"root"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
	Err     bool          `json:"err,omitempty"`
	Slow    bool          `json:"slow,omitempty"`
	Spans   []Span        `json:"spans,omitempty"`
}

// A Store keeps recently recorded traces in a fixed-capacity ring buffer:
// the daemon's -trace-buffer. Insertion evicts the oldest stored trace once
// the ring is full, so memory is bounded by capacity however long the
// daemon runs.
//
// Which traces are stored is a head-style decision per trace (not per
// span): a ratio-sampled coin flip, overridden to "keep" for (a) traces
// continued from another process — the caller stamped a span id, so the
// outer daemon is already storing its half and a sampled-away inner half
// would leave holes in every merged tree — (b) error traces, and (c) slow
// traces (root duration at or above the store's slow threshold). Sampling
// exists to bound CPU spent storing, not correctness: recording itself is
// per-request when tracing is enabled.
type Store struct {
	capacity int
	ratio    float64
	slow     time.Duration

	mu   sync.Mutex
	ring []*Trace // FIFO by insertion; ring[head] is the oldest
	head int
	byID map[string]*Trace

	reg     *provobs.Registry
	stored  *provobs.Counter
	evicted *provobs.Counter
	dropped *provobs.Counter
	kept    *provobs.Gauge
}

// NewStore returns a trace store holding at most capacity traces (min 1),
// head-sampling at ratio (clamped to [0,1]), and flagging traces with root
// duration >= slow as always-keep (slow <= 0 disables the slow override).
func NewStore(capacity int, ratio float64, slow time.Duration) *Store {
	if capacity < 1 {
		capacity = 1
	}
	ratio = min(max(ratio, 0), 1)
	st := &Store{
		capacity: capacity,
		ratio:    ratio,
		slow:     slow,
		ring:     make([]*Trace, 0, capacity),
		byID:     make(map[string]*Trace, capacity),
		reg:      provobs.NewRegistry(),
	}
	st.stored = st.reg.Counter("cpdb_trace_stored_total",
		"Traces stored in the ring buffer.", provobs.WithStatKey("trace.stored"))
	st.evicted = st.reg.Counter("cpdb_trace_evicted_total",
		"Traces evicted from the ring buffer.", provobs.WithStatKey("trace.evicted"))
	st.dropped = st.reg.Counter("cpdb_trace_dropped_total",
		"Recorded traces not stored (sampled away).", provobs.WithStatKey("trace.dropped"))
	st.kept = st.reg.Gauge("cpdb_trace_buffered",
		"Traces currently in the ring buffer.", provobs.WithStatKey("trace.buffered"))
	return st
}

// Registry exposes the store's counters for /metrics and /v1/stats. The
// keys only appear when tracing is enabled, preserving tracing-off
// byte-identity of both endpoints.
func (st *Store) Registry() *provobs.Registry { return st.reg }

// SlowThreshold returns the always-keep slow cutoff (0 = disabled).
func (st *Store) SlowThreshold() time.Duration { return st.slow }

// sample is the head-sampling coin flip.
func (st *Store) sample() bool {
	if st.ratio >= 1 {
		return true
	}
	if st.ratio <= 0 {
		return false
	}
	return rand.Float64() < st.ratio
}

// Finish files the recorder's trace into the store, applying the sampling
// decision. forced bypasses sampling (continued traces). The trace's
// summary — root name, start, duration, error — comes from its root span:
// the recorded span whose parent is the recorder's remote parent id (or
// the longest span, if instrumentation never closed a root). Returns
// whether the trace was stored.
func (st *Store) Finish(rec *Recorder, forced bool) bool {
	if st == nil || rec == nil {
		return false
	}
	spans := rec.Spans()
	if len(spans) == 0 {
		return false
	}
	t := summarize(rec, spans)
	if st.slow > 0 && t.Dur >= st.slow {
		t.Slow = true
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if prev, ok := st.byID[t.TraceID]; ok {
		// Another request of the same trace is already stored (one CLI
		// recorder can issue several RPCs): merge rather than duplicate, and
		// never drop the later half of a kept trace.
		mergeInto(prev, t)
		return true
	}
	if !forced && !t.Err && !t.Slow && !st.sample() {
		st.dropped.Add(1)
		return false
	}
	if len(st.ring) < st.capacity {
		st.ring = append(st.ring, t)
	} else {
		old := st.ring[st.head]
		delete(st.byID, old.TraceID)
		st.ring[st.head] = t
		st.head = (st.head + 1) % st.capacity
		st.evicted.Add(1)
	}
	st.byID[t.TraceID] = t
	st.stored.Add(1)
	st.kept.Set(int64(len(st.byID)))
	return true
}

// summarize builds the stored trace from one recorder's spans.
func summarize(rec *Recorder, spans []Span) *Trace {
	t := &Trace{TraceID: rec.traceID, Spans: spans}
	root := -1
	for i := range spans {
		if spans[i].Err != "" {
			t.Err = true
		}
		if spans[i].ParentID == rec.parent {
			if root < 0 || spans[i].Start.Before(spans[root].Start) {
				root = i
			}
		}
	}
	if root < 0 { // no span closed at the recorder's top level: take the longest
		for i := range spans {
			if root < 0 || spans[i].Dur > spans[root].Dur {
				root = i
			}
		}
	}
	t.Root = spans[root].Name
	t.Start = spans[root].Start
	t.Dur = spans[root].Dur
	return t
}

// mergeInto folds a later request's spans into an already-stored trace.
func mergeInto(dst *Trace, src *Trace) {
	dst.Spans = append(dst.Spans, src.Spans...)
	dst.Err = dst.Err || src.Err
	dst.Slow = dst.Slow || src.Slow
	if src.Start.Before(dst.Start) {
		dst.Root, dst.Start, dst.Dur = src.Root, src.Start, src.Dur
	}
}

// Get returns the stored trace with the given id, or nil. The returned
// copy's span slice is private to the caller.
func (st *Store) Get(id string) *Trace {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.byID[id]
	if !ok {
		return nil
	}
	cp := *t
	cp.Spans = make([]Span, len(t.Spans))
	copy(cp.Spans, t.Spans)
	return &cp
}

// List returns summaries (no spans) of stored traces, newest first,
// filtered to root duration >= minDur, at most limit (<=0 means all).
func (st *Store) List(minDur time.Duration, limit int) []Trace {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Trace, 0, len(st.ring))
	// Walk newest-to-oldest: the ring is FIFO with ring[head] oldest.
	for i := len(st.ring) - 1; i >= 0; i-- {
		t := st.ring[(st.head+i)%len(st.ring)]
		if t.Dur < minDur {
			continue
		}
		cp := *t
		cp.Spans = nil
		out = append(out, cp)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Len returns the number of stored traces.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.ring)
}

// StartRoot opens a fresh trace rooted at name and returns a context
// recording into it; the returned span's End files the whole trace into
// the store (subject to sampling). This is how background work with no
// incoming request — the replication applier's apply passes — gets traced.
// A nil store returns (ctx, nil): the instrumentation is free when tracing
// is off.
func (st *Store) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if st == nil {
		return ctx, nil
	}
	rec := NewRecorder("", "")
	ctx, sp := Start(WithRecorder(ctx, rec), name)
	sp.sink = st
	return ctx, sp
}

// defaultStore is the process-wide sink for background traces: code with
// no request context (the replication applier) roots traces here. Set by
// the daemon when -trace-buffer is enabled; nil means background tracing
// is off.
var defaultStore atomic.Pointer[Store]

// SetDefault installs (or, with nil, clears) the process-wide background
// trace sink.
func SetDefault(st *Store) { defaultStore.Store(st) }

// Default returns the process-wide background trace sink, possibly nil
// (nil is still a valid StartRoot receiver).
func Default() *Store { return defaultStore.Load() }
