package provtrace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// A Node is one span in an assembled trace tree. Self is the span's
// self-time: its duration minus the duration of its children, clamped at
// zero (children of a scatter-gather overlap, so the naive subtraction can
// go negative).
type Node struct {
	Span     Span          `json:"span"`
	Self     time.Duration `json:"self_ns"`
	Children []*Node       `json:"children,omitempty"`
}

// BuildTree assembles flat spans (possibly merged from several processes)
// into a forest. A span whose ParentID is empty or names no span in the
// set becomes a root — the latter happens by construction in a chained
// deployment when only the inner daemon's half of a trace is available.
// Roots and children are ordered by start time; duplicate span ids (the
// same half stored twice) are collapsed.
func BuildTree(spans []Span) []*Node {
	nodes := make(map[string]*Node, len(spans))
	order := make([]*Node, 0, len(spans))
	for i := range spans {
		if _, dup := nodes[spans[i].SpanID]; dup {
			continue
		}
		n := &Node{Span: spans[i]}
		nodes[spans[i].SpanID] = n
		order = append(order, n)
	}
	var roots []*Node
	for _, n := range order {
		if p, ok := nodes[n.Span.ParentID]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*Node) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].Span.Start.Before(ns[j].Span.Start) })
	}
	byStart(roots)
	for _, n := range order {
		byStart(n.Children)
		self := n.Span.Dur
		for _, c := range n.Children {
			self -= c.Span.Dur
		}
		n.Self = max(self, 0)
	}
	return roots
}

// Render writes the forest as an indented tree, one span per line:
//
//	server:query                  412µs (self 12µs)  status=200
//	  plan:trace                  389µs (self 41µs)
//	    shard:scan                118µs  shard=0 records=37
//
// Durations are rounded for the eye; attributes print k=v in recorded
// order; failed spans end with "ERR: <message>".
func Render(w io.Writer, roots []*Node) {
	for _, r := range roots {
		renderNode(w, r, 0)
	}
}

func renderNode(w io.Writer, n *Node, depth int) {
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Span.Name)
	fmt.Fprintf(&b, "  %s", fmtDur(n.Span.Dur))
	if len(n.Children) > 0 {
		fmt.Fprintf(&b, " (self %s)", fmtDur(n.Self))
	}
	for _, a := range n.Span.Attrs {
		b.WriteString("  ")
		b.WriteString(a.K)
		b.WriteByte('=')
		b.WriteString(a.V)
	}
	if n.Span.Err != "" {
		b.WriteString("  ERR: ")
		b.WriteString(n.Span.Err)
	}
	b.WriteByte('\n')
	io.WriteString(w, b.String()) //nolint:errcheck // best-effort rendering
	for _, c := range n.Children {
		renderNode(w, c, depth+1)
	}
}

// fmtDur rounds a duration to a readable precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// A SelfTime names one span and its self-time — the slow-query log's
// breakdown unit.
type SelfTime struct {
	Name string
	Self time.Duration
}

// TopSelf returns the k spans with the largest self-time, descending —
// "where did the time actually go" for the slow-query log.
func TopSelf(spans []Span, k int) []SelfTime {
	var all []SelfTime
	var walk func(ns []*Node)
	walk = func(ns []*Node) {
		for _, n := range ns {
			all = append(all, SelfTime{Name: n.Span.Name, Self: n.Self})
			walk(n.Children)
		}
	}
	walk(BuildTree(spans))
	sort.SliceStable(all, func(i, j int) bool { return all[i].Self > all[j].Self })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// FormatTopSelf renders TopSelf output for one log field:
// "plan:trace=389µs,shard:scan=118µs,server:query=12µs".
func FormatTopSelf(tops []SelfTime) string {
	var b strings.Builder
	for i, t := range tops {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.Name)
		b.WriteByte('=')
		b.WriteString(fmtDur(t.Self))
	}
	return b.String()
}
