// Package provtrace is the span layer of the observability stack: causal,
// hierarchical timing that follows one request across every driver in a
// composite backend chain — and across processes, when daemons are chained
// — the way the provenance model itself follows a record across copy
// operations.
//
// A Span is one timed operation: {TraceID, SpanID, ParentID, Name, Attrs,
// Start, Dur, Err}. Spans open via context:
//
//	ctx, sp := provtrace.Start(ctx, "shard:scan")
//	defer sp.End()
//	sp.SetAttr("shard", "3")
//
// and form a tree through ParentID. The whole layer is pay-for-play: when
// no Recorder is installed on the context, Start returns a nil span after
// one context lookup, every span method is a nil-check, and no allocation
// happens — tracing-off execution is byte- and behavior-identical to a
// build without the calls.
//
// A Recorder collects the finished spans of one trace (concurrency-safe:
// sharded scatter-gather ends spans from many goroutines). The daemon keeps
// recorded traces in a ring-buffer Store (see store.go) with head sampling
// plus always-keep for slow and error traces, and serves them over
// GET /v1/traces. Cross-process continuity comes from two headers: the
// existing X-Cpdb-Trace-Id names the trace, and X-Cpdb-Span-Id carries the
// caller's active span so the server's root span parents under it; each
// process stores only its own spans, and trees are merged at read time.
package provtrace

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/provobs"
)

// An Attr is one key=value annotation on a span. Values are strings so
// spans marshal stably and render without reflection.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// A Span is one timed operation in a trace. The exported fields are the
// wire/record form (served by /v1/traces and stored in the ring buffer);
// the unexported recorder pointer makes the same struct the live handle
// returned by Start. A nil *Span is a valid no-op handle: every method
// checks the receiver, so call sites never branch on whether tracing is on.
type Span struct {
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Start    time.Time     `json:"start"`
	Dur      time.Duration `json:"dur_ns"`
	Err      string        `json:"err,omitempty"`

	rec  *Recorder // nil once ended, and on stored copies
	sink *Store    // root spans opened by Store.StartRoot flush here on End
}

// scope is the single context value: the trace's recorder plus the id of
// the currently active span (the parent of the next Start). One Value
// lookup answers both "is tracing on" and "who is my parent".
type scope struct {
	rec    *Recorder
	spanID string
}

type ctxKey struct{}

// A Recorder collects the finished spans of one trace. It is safe for
// concurrent use: a sharded scatter-gather ends one span per shard from
// parallel goroutines, all into the same recorder.
type Recorder struct {
	traceID string
	parent  string // remote caller's span id; roots parent under it

	mu    sync.Mutex
	spans []Span
}

// NewRecorder returns a recorder for one trace. parentID is the remote
// caller's active span id ("" when this process originates the trace); the
// first span started under the recorder parents beneath it, which is what
// stitches a chained daemon's subtree under the caller's rpc span.
func NewRecorder(traceID, parentID string) *Recorder {
	if traceID == "" {
		traceID = provobs.NewTraceID()
	}
	return &Recorder{traceID: traceID, parent: parentID}
}

// TraceID returns the id of the trace being recorded.
func (r *Recorder) TraceID() string { return r.traceID }

// Spans returns a copy of the spans recorded so far.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

func (r *Recorder) add(s Span) {
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// WithRecorder installs rec on the context, making Start record spans. It
// also stamps the recorder's trace id as the flat provobs trace id, so the
// request log, error wrapping and span tree all agree on one id.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	ctx = provobs.WithTraceID(ctx, rec.traceID)
	return context.WithValue(ctx, ctxKey{}, &scope{rec: rec, spanID: rec.parent})
}

// Active reports whether a recorder is installed on ctx — the guard for
// instrumentation that would otherwise allocate (attribute formatting,
// cursor wrapping) even when tracing is off.
func Active(ctx context.Context) bool {
	sc, _ := ctx.Value(ctxKey{}).(*scope)
	return sc != nil
}

// IDs returns the trace id and currently active span id on ctx, or empty
// strings when no recorder is installed. The client uses the pair to stamp
// X-Cpdb-Trace-Id and X-Cpdb-Span-Id on outgoing requests.
func IDs(ctx context.Context) (traceID, spanID string) {
	sc, _ := ctx.Value(ctxKey{}).(*scope)
	if sc == nil {
		return "", ""
	}
	return sc.rec.traceID, sc.spanID
}

// Start opens a span named name under the currently active span. When no
// recorder is installed it returns (ctx, nil) after a single context
// lookup — the near-zero off path. The returned context carries the new
// span as the active parent; End records the span into the trace.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	sc, _ := ctx.Value(ctxKey{}).(*scope)
	if sc == nil {
		return ctx, nil
	}
	sp := &Span{
		TraceID:  sc.rec.traceID,
		SpanID:   newSpanID(),
		ParentID: sc.spanID,
		Name:     name,
		Start:    time.Now(),
		rec:      sc.rec,
	}
	return context.WithValue(ctx, ctxKey{}, &scope{rec: sc.rec, spanID: sp.SpanID}), sp
}

// Emit records an already-measured span — the bridge from the plan layer's
// Analyze taps, which accumulate per-operator time on their own and report
// it when the plan finishes. The span parents under ctx's active span. No
// recorder installed means no-op.
func Emit(ctx context.Context, name string, start time.Time, dur time.Duration, attrs ...Attr) {
	sc, _ := ctx.Value(ctxKey{}).(*scope)
	if sc == nil {
		return
	}
	sc.rec.add(Span{
		TraceID:  sc.rec.traceID,
		SpanID:   newSpanID(),
		ParentID: sc.spanID,
		Name:     name,
		Attrs:    attrs,
		Start:    start,
		Dur:      dur,
	})
}

// Mark emits a zero-duration marker span at the current instant — for
// point events like cache hits, where only the fact and its attrs matter.
// Free (no clock read) when the context carries no recorder.
func Mark(ctx context.Context, name string, attrs ...Attr) {
	if !Active(ctx) {
		return
	}
	Emit(ctx, name, time.Now(), 0, attrs...)
}

// SetAttr annotates the span with key=value. Safe on a nil or ended span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{K: k, V: v})
}

// SetErr marks the span failed with err's message (a nil error is
// ignored). Error spans defeat sampling: the store always keeps them.
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.Err = err.Error()
}

// End stamps the span's duration and records it into its trace. Safe on a
// nil span and idempotent: the second End is a no-op.
func (s *Span) End() {
	if s == nil || s.rec == nil {
		return
	}
	s.Dur = time.Since(s.Start)
	rec := s.rec
	s.rec = nil
	rec.add(*s)
	if s.sink != nil {
		s.sink.Finish(rec, false)
	}
}

// newSpanID returns 8 random bytes as 16 hex characters. Span ids only
// need to be unique within a trace (and cheap: one per instrumented
// operation on a hot path), so the process-seeded math/rand/v2 generator
// is used rather than crypto/rand.
func newSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rand.Uint64())
	return hex.EncodeToString(b[:])
}
