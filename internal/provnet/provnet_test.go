package provnet_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/path"
	"repro/internal/provnet"
	"repro/internal/provstore"
	"repro/internal/update"
)

func charged(t *testing.T) (*provnet.ChargedBackend, *netsim.Conn, *netsim.Conn, *netsim.Clock) {
	t.Helper()
	clock := netsim.NewClock()
	write := netsim.NewConn("prov-write", clock, netsim.CostModel{RTT: 50 * time.Millisecond, PerRecord: 10 * time.Millisecond})
	read := netsim.NewConn("prov-read", clock, netsim.CostModel{RTT: 30 * time.Millisecond, PerRecord: time.Millisecond})
	return provnet.New(provstore.NewMemBackend(), write, read), write, read, clock
}

func rec(tid int64, loc string) provstore.Record {
	return provstore.Record{Tid: tid, Op: provstore.OpInsert, Loc: path.MustParse(loc)}
}

func TestChargesWritePerBatch(t *testing.T) {
	b, write, _, clock := charged(t)
	if err := b.Append(context.Background(), []provstore.Record{rec(1, "T/a"), rec(1, "T/b"), rec(1, "T/c")}); err != nil {
		t.Fatal(err)
	}
	st := write.Stats()
	if st.Calls != 1 || st.Records != 3 {
		t.Errorf("write stats = %+v", st)
	}
	// 50ms RTT + 3×10ms records (+ byte cost 0).
	if clock.Now() < 80*time.Millisecond {
		t.Errorf("clock = %v", clock.Now())
	}
	n, _ := b.Inner().Count(context.Background())
	if n != 3 {
		t.Errorf("inner count = %d", n)
	}
}

func TestChargesReads(t *testing.T) {
	b, _, read, _ := charged(t)
	b.Append(context.Background(), []provstore.Record{rec(1, "T/a"), rec(2, "T/a")})
	before := read.Stats().Calls
	if _, _, err := b.Lookup(context.Background(), 1, path.MustParse("T/a")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.NearestAncestor(context.Background(), 1, path.MustParse("T/a/b")); err != nil {
		t.Fatal(err)
	}
	if _, err := provstore.CollectScan(b.ScanTid(context.Background(), 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := provstore.CollectScan(b.ScanLoc(context.Background(), path.MustParse("T/a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := provstore.CollectScan(b.ScanLocPrefix(context.Background(), path.MustParse("T"))); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Tids(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.MaxTid(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Count(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Bytes(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := read.Stats().Calls - before; got != 9 {
		t.Errorf("read calls = %d, want 9", got)
	}
}

// TestFaultAbortsBeforeWrite: a dropped round trip must leave the
// provenance store untouched — the consistency property §1.3 demands of
// high-level interfaces.
func TestFaultAbortsBeforeWrite(t *testing.T) {
	clock := netsim.NewClock()
	write := netsim.NewConn("w", clock, netsim.CostModel{RTT: time.Millisecond})
	read := netsim.NewConn("r", clock, netsim.CostModel{RTT: time.Millisecond})
	b := provnet.New(provstore.NewMemBackend(), write, read)
	write.InjectFaults(1.0, 7)
	err := b.Append(context.Background(), []provstore.Record{rec(1, "T/a")})
	if !errors.Is(err, netsim.ErrNetwork) {
		t.Fatalf("want ErrNetwork, got %v", err)
	}
	n, _ := b.Inner().Count(context.Background())
	if n != 0 {
		t.Error("failed round trip reached the store")
	}
	// Read faults propagate on every read surface.
	read.InjectFaults(1.0, 7)
	if _, _, err := b.Lookup(context.Background(), 1, path.MustParse("T/a")); !errors.Is(err, netsim.ErrNetwork) {
		t.Errorf("read fault: %v", err)
	}
	if _, _, err := b.NearestAncestor(context.Background(), 1, path.MustParse("T/a/b")); !errors.Is(err, netsim.ErrNetwork) {
		t.Errorf("ancestor fault: %v", err)
	}
	if _, err := provstore.CollectScan(b.ScanTid(context.Background(), 1)); !errors.Is(err, netsim.ErrNetwork) {
		t.Errorf("scan fault: %v", err)
	}
	if _, err := provstore.CollectScan(b.ScanLoc(context.Background(), path.MustParse("T/a"))); !errors.Is(err, netsim.ErrNetwork) {
		t.Errorf("scanloc fault: %v", err)
	}
	if _, err := provstore.CollectScan(b.ScanLocPrefix(context.Background(), path.MustParse("T"))); !errors.Is(err, netsim.ErrNetwork) {
		t.Errorf("scanprefix fault: %v", err)
	}
	if _, err := provstore.CollectScan(b.ScanLocWithAncestors(context.Background(), path.MustParse("T/a"))); !errors.Is(err, netsim.ErrNetwork) {
		t.Errorf("scanancestors fault: %v", err)
	}
	if _, err := b.Tids(context.Background()); !errors.Is(err, netsim.ErrNetwork) {
		t.Errorf("tids fault: %v", err)
	}
	if _, err := b.MaxTid(context.Background()); !errors.Is(err, netsim.ErrNetwork) {
		t.Errorf("maxtid fault: %v", err)
	}
	if _, err := b.Count(context.Background()); !errors.Is(err, netsim.ErrNetwork) {
		t.Errorf("count fault: %v", err)
	}
	if _, err := b.Bytes(context.Background()); !errors.Is(err, netsim.ErrNetwork) {
		t.Errorf("bytes fault: %v", err)
	}
}

// TestChargedScanWithAncestors covers the combined scan's charging.
func TestChargedScanWithAncestors(t *testing.T) {
	b, _, read, _ := charged(t)
	b.Append(context.Background(), []provstore.Record{rec(1, "T/a"), rec(2, "T/a")})
	before := read.Stats()
	recs, err := provstore.CollectScan(b.ScanLocWithAncestors(context.Background(), path.MustParse("T/a/deep")))
	if err != nil || len(recs) != 2 {
		t.Fatalf("ScanLocWithAncestors = %v, %v", recs, err)
	}
	after := read.Stats()
	if after.Calls != before.Calls+1 || after.Records != before.Records+2 {
		t.Errorf("charging wrong: %+v -> %+v", before, after)
	}
}

// TestTrackerOverCharged runs trackers over the charged backend and checks
// the round-trip profile the paper describes: deferred methods touch the
// network only at commit.
func TestTrackerOverCharged(t *testing.T) {
	b, write, read, _ := charged(t)
	tr := provstore.MustNew(provstore.HierTrans, provstore.Config{Backend: b})
	tr.Begin()
	tr.OnInsert(insEff("T/x"))
	tr.OnInsert(insEff("T/y"))
	if write.Stats().Calls != 0 || read.Stats().Calls != 0 {
		t.Error("deferred ops must not touch the network")
	}
	if _, err := tr.Commit(); err != nil {
		t.Fatal(err)
	}
	if write.Stats().Calls != 1 {
		t.Errorf("commit should be one round trip, got %d", write.Stats().Calls)
	}
}

func insEff(loc string) (e update.Effect) {
	e.Inserted = []path.Path{path.MustParse(loc)}
	return e
}
