// Package provnet connects the provenance store to the simulated network:
// it wraps a provstore.Backend so that every backend method — one logical
// round trip to the provenance database, per the paper's architecture —
// charges a netsim connection. Writes and reads can be priced separately
// (an INSERT round trip through JDBC costs more than a point SELECT).
package provnet

import (
	"context"
	"iter"

	"repro/internal/path"
	"repro/internal/provstore"
)

// A Caller is the slice of netsim.Conn this package needs; it is satisfied
// by *netsim.Conn.
type Caller interface {
	Call(records, bytes int) error
}

// ChargedBackend wraps a backend, charging write round trips to Write and
// read round trips to Read. A failed (fault-injected) round trip aborts the
// operation before it reaches the wrapped backend, as a dropped network
// call would. A cancelled context aborts before the round trip is even
// charged — the caller hung up before dialing.
type ChargedBackend struct {
	inner provstore.Backend
	write Caller
	read  Caller
}

var _ provstore.Backend = (*ChargedBackend)(nil)

// New wraps inner with the given write and read connections.
func New(inner provstore.Backend, write, read Caller) *ChargedBackend {
	return &ChargedBackend{inner: inner, write: write, read: read}
}

// Inner returns the wrapped backend.
func (b *ChargedBackend) Inner() provstore.Backend { return b.inner }

func recordsBytes(recs []provstore.Record) int {
	n := 0
	for _, r := range recs {
		n += r.EncodedSize()
	}
	return n
}

// Append implements provstore.Backend: one write round trip carrying the
// whole batch.
func (b *ChargedBackend) Append(ctx context.Context, recs []provstore.Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := b.write.Call(len(recs), recordsBytes(recs)); err != nil {
		return err
	}
	return b.inner.Append(ctx, recs)
}

// Lookup implements provstore.Backend: one read round trip.
func (b *ChargedBackend) Lookup(ctx context.Context, tid int64, loc path.Path) (provstore.Record, bool, error) {
	if err := ctx.Err(); err != nil {
		return provstore.Record{}, false, err
	}
	if err := b.read.Call(1, 0); err != nil {
		return provstore.Record{}, false, err
	}
	return b.inner.Lookup(ctx, tid, loc)
}

// NearestAncestor implements provstore.Backend: one read round trip (the
// ancestor probing happens server-side, as in the paper's stored
// procedures).
func (b *ChargedBackend) NearestAncestor(ctx context.Context, tid int64, loc path.Path) (provstore.Record, bool, error) {
	if err := ctx.Err(); err != nil {
		return provstore.Record{}, false, err
	}
	if err := b.read.Call(1, 0); err != nil {
		return provstore.Record{}, false, err
	}
	return b.inner.NearestAncestor(ctx, tid, loc)
}

// chargedScan prices one scan round trip: the inner cursor is drained
// first — the simulated wire ships the whole result set in one reply, and
// its cost depends on how many records that is — then the round trip is
// charged and the records replayed to the consumer. Materializing here is
// deliberate: this wrapper exists to account simulated network cost, not to
// bound memory, and pricing must match the paper's per-reply model.
func (b *ChargedBackend) chargedScan(scan iter.Seq2[provstore.Record, error]) iter.Seq2[provstore.Record, error] {
	return func(yield func(provstore.Record, error) bool) {
		recs, err := provstore.CollectScan(scan)
		if err != nil {
			yield(provstore.Record{}, err)
			return
		}
		if err := b.read.Call(len(recs), recordsBytes(recs)); err != nil {
			yield(provstore.Record{}, err)
			return
		}
		for _, r := range recs {
			if !yield(r, nil) {
				return
			}
		}
	}
}

// ScanTid implements provstore.Backend: one read round trip shipping the
// result set back.
func (b *ChargedBackend) ScanTid(ctx context.Context, tid int64) iter.Seq2[provstore.Record, error] {
	return b.chargedScan(b.inner.ScanTid(ctx, tid))
}

// ScanLoc implements provstore.Backend.
func (b *ChargedBackend) ScanLoc(ctx context.Context, loc path.Path) iter.Seq2[provstore.Record, error] {
	return b.chargedScan(b.inner.ScanLoc(ctx, loc))
}

// ScanLocPrefix implements provstore.Backend.
func (b *ChargedBackend) ScanLocPrefix(ctx context.Context, prefix path.Path) iter.Seq2[provstore.Record, error] {
	return b.chargedScan(b.inner.ScanLocPrefix(ctx, prefix))
}

// ScanLocWithAncestors implements provstore.Backend: one read round trip.
func (b *ChargedBackend) ScanLocWithAncestors(ctx context.Context, loc path.Path) iter.Seq2[provstore.Record, error] {
	return b.chargedScan(b.inner.ScanLocWithAncestors(ctx, loc))
}

// ScanAll implements provstore.Backend: one read round trip shipping the
// whole relation.
func (b *ChargedBackend) ScanAll(ctx context.Context) iter.Seq2[provstore.Record, error] {
	return b.chargedScan(b.inner.ScanAll(ctx))
}

// ScanAllAfter implements provstore.Backend: one read round trip shipping
// the relation's tail after the keyset position.
func (b *ChargedBackend) ScanAllAfter(ctx context.Context, tid int64, loc path.Path) iter.Seq2[provstore.Record, error] {
	return b.chargedScan(b.inner.ScanAllAfter(ctx, tid, loc))
}

// Tids implements provstore.Backend.
func (b *ChargedBackend) Tids(ctx context.Context) ([]int64, error) {
	tids, err := b.inner.Tids(ctx)
	if err != nil {
		return nil, err
	}
	if err := b.read.Call(len(tids), 8*len(tids)); err != nil {
		return nil, err
	}
	return tids, nil
}

// MaxTid implements provstore.Backend.
func (b *ChargedBackend) MaxTid(ctx context.Context) (int64, error) {
	if err := b.read.Call(1, 8); err != nil {
		return 0, err
	}
	return b.inner.MaxTid(ctx)
}

// Count implements provstore.Backend.
func (b *ChargedBackend) Count(ctx context.Context) (int, error) {
	if err := b.read.Call(1, 8); err != nil {
		return 0, err
	}
	return b.inner.Count(ctx)
}

// Bytes implements provstore.Backend.
func (b *ChargedBackend) Bytes(ctx context.Context) (int64, error) {
	if err := b.read.Call(1, 8); err != nil {
		return 0, err
	}
	return b.inner.Bytes(ctx)
}
