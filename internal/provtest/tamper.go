package provtest

import (
	"context"
	"iter"
	"sync/atomic"

	"repro/internal/path"
	"repro/internal/provstore"
)

// A TamperBackend simulates storage-level corruption: writes pass through
// untouched, and while armed, every record leaving the store on a read
// path goes through Mutate first. Sandwiching it under an authenticated
// wrapper — provauth over Tamper over mem — gives tests a store whose
// Merkle tree was built over honest data but whose reads lie, which is
// exactly the scenario inclusion proofs must catch.
type TamperBackend struct {
	inner  provstore.Backend
	armed  atomic.Bool
	Mutate func(provstore.Record) provstore.Record
}

var _ provstore.Backend = (*TamperBackend)(nil)

// NewTamper wraps inner. mutate alters records on read while the backend
// is armed; nil defaults to flipping the record's Op byte — a single-byte
// corruption that keeps the {Tid, Loc} key intact, so only a hash check
// can notice it.
func NewTamper(inner provstore.Backend, mutate func(provstore.Record) provstore.Record) *TamperBackend {
	if mutate == nil {
		mutate = func(r provstore.Record) provstore.Record {
			if r.Op == provstore.OpInsert {
				r.Op = provstore.OpDelete
			} else {
				r.Op = provstore.OpInsert
				r.Src = path.Path{}
			}
			return r
		}
	}
	return &TamperBackend{inner: inner, Mutate: mutate}
}

// Arm starts (or stops) corrupting reads.
func (t *TamperBackend) Arm(on bool) { t.armed.Store(on) }

func (t *TamperBackend) out(r provstore.Record) provstore.Record {
	if t.armed.Load() {
		return t.Mutate(r)
	}
	return r
}

func (t *TamperBackend) tampered(scan iter.Seq2[provstore.Record, error]) iter.Seq2[provstore.Record, error] {
	return func(yield func(provstore.Record, error) bool) {
		for rec, err := range scan {
			if err != nil {
				yield(provstore.Record{}, err)
				return
			}
			if !yield(t.out(rec), nil) {
				return
			}
		}
	}
}

// Append implements Backend (writes are honest).
func (t *TamperBackend) Append(ctx context.Context, recs []provstore.Record) error {
	return t.inner.Append(ctx, recs)
}

// Lookup implements Backend.
func (t *TamperBackend) Lookup(ctx context.Context, tid int64, loc path.Path) (provstore.Record, bool, error) {
	rec, ok, err := t.inner.Lookup(ctx, tid, loc)
	if ok && err == nil {
		rec = t.out(rec)
	}
	return rec, ok, err
}

// NearestAncestor implements Backend.
func (t *TamperBackend) NearestAncestor(ctx context.Context, tid int64, loc path.Path) (provstore.Record, bool, error) {
	rec, ok, err := t.inner.NearestAncestor(ctx, tid, loc)
	if ok && err == nil {
		rec = t.out(rec)
	}
	return rec, ok, err
}

// ScanTid implements Backend.
func (t *TamperBackend) ScanTid(ctx context.Context, tid int64) iter.Seq2[provstore.Record, error] {
	return t.tampered(t.inner.ScanTid(ctx, tid))
}

// ScanLoc implements Backend.
func (t *TamperBackend) ScanLoc(ctx context.Context, loc path.Path) iter.Seq2[provstore.Record, error] {
	return t.tampered(t.inner.ScanLoc(ctx, loc))
}

// ScanLocPrefix implements Backend.
func (t *TamperBackend) ScanLocPrefix(ctx context.Context, prefix path.Path) iter.Seq2[provstore.Record, error] {
	return t.tampered(t.inner.ScanLocPrefix(ctx, prefix))
}

// ScanLocWithAncestors implements Backend.
func (t *TamperBackend) ScanLocWithAncestors(ctx context.Context, loc path.Path) iter.Seq2[provstore.Record, error] {
	return t.tampered(t.inner.ScanLocWithAncestors(ctx, loc))
}

// ScanAll implements Backend.
func (t *TamperBackend) ScanAll(ctx context.Context) iter.Seq2[provstore.Record, error] {
	return t.tampered(t.inner.ScanAll(ctx))
}

// ScanAllAfter implements Backend.
func (t *TamperBackend) ScanAllAfter(ctx context.Context, tid int64, loc path.Path) iter.Seq2[provstore.Record, error] {
	return t.tampered(t.inner.ScanAllAfter(ctx, tid, loc))
}

// Tids implements Backend.
func (t *TamperBackend) Tids(ctx context.Context) ([]int64, error) { return t.inner.Tids(ctx) }

// MaxTid implements Backend.
func (t *TamperBackend) MaxTid(ctx context.Context) (int64, error) { return t.inner.MaxTid(ctx) }

// Count implements Backend.
func (t *TamperBackend) Count(ctx context.Context) (int, error) { return t.inner.Count(ctx) }

// Bytes implements Backend.
func (t *TamperBackend) Bytes(ctx context.Context) (int64, error) { return t.inner.Bytes(ctx) }
