// Package provtest provides shared test scaffolding for driving provenance
// trackers with update sequences and recording version snapshots. It is the
// reference driver the real editor (internal/core) is cross-checked against,
// and is also used by query and benchmark tests.
//
// It also hosts the cross-backend cursor conformance suite (Conformance,
// conformance.go): one table of contract subtests — scan ordering, seek
// equivalence, early-break resource release, mid-stream and pre-issued
// cancellation — that every Backend implementation runs against its own
// constructor.
package provtest

import (
	"context"
	"fmt"

	"repro/internal/provstore"
	"repro/internal/tree"
	"repro/internal/update"
)

// A Version is a snapshot of the forest at a transaction boundary.
type Version struct {
	// Tid is the transaction that produced this version (0 for the
	// initial version).
	Tid int64
	// Forest is a deep copy of the forest state.
	Forest *tree.Forest
}

// Run applies the update sequence to the forest, feeding each operation's
// effect to the tracker, committing every commitEvery operations (and once
// at the end if operations remain). commitEvery <= 0 means a single
// transaction for the whole sequence.
//
// It returns one Version per transaction boundary, starting with the initial
// state (Tid 0). For immediate trackers (N, H) the returned versions span
// the Begin/Commit windows of the driver, not the per-operation transactions
// the trackers allocate internally; use RunPerOp to snapshot around every
// operation.
func Run(tr provstore.Tracker, f *tree.Forest, seq update.Sequence, commitEvery int) ([]Version, error) {
	versions := []Version{{Tid: 0, Forest: f.Clone()}}
	opened := false
	for i, op := range seq {
		if !opened {
			if err := tr.Begin(); err != nil {
				return nil, err
			}
			opened = true
		}
		if err := applyOne(tr, f, op); err != nil {
			return nil, fmt.Errorf("provtest: op %d (%s): %w", i+1, op, err)
		}
		if commitEvery > 0 && (i+1)%commitEvery == 0 {
			tid, err := tr.Commit()
			if err != nil {
				return nil, err
			}
			opened = false
			versions = append(versions, Version{Tid: tid, Forest: f.Clone()})
		}
	}
	if opened {
		tid, err := tr.Commit()
		if err != nil {
			return nil, err
		}
		versions = append(versions, Version{Tid: tid, Forest: f.Clone()})
	}
	return versions, nil
}

// RunPerOp applies the sequence with one Begin/Commit per operation and
// snapshots the forest around every operation, so versions[i] and
// versions[i+1] bracket operation i. This matches the per-operation
// transactions of the immediate methods (Figure 5(a) and (c)).
func RunPerOp(tr provstore.Tracker, f *tree.Forest, seq update.Sequence) ([]Version, error) {
	versions := []Version{{Tid: 0, Forest: f.Clone()}}
	for i, op := range seq {
		if err := tr.Begin(); err != nil {
			return nil, err
		}
		if err := applyOne(tr, f, op); err != nil {
			return nil, fmt.Errorf("provtest: op %d (%s): %w", i+1, op, err)
		}
		tid, err := tr.Commit()
		if err != nil {
			return nil, err
		}
		versions = append(versions, Version{Tid: tid, Forest: f.Clone()})
	}
	return versions, nil
}

// applyOne computes the operation's effect, applies it to the forest, and
// feeds the effect to the tracker — the same order the editor uses.
func applyOne(tr provstore.Tracker, f *tree.Forest, op update.Op) error {
	eff, err := op.Effect(f)
	if err != nil {
		return err
	}
	if err := op.Apply(f); err != nil {
		return err
	}
	switch op.(type) {
	case update.Insert:
		return tr.OnInsert(eff)
	case update.Delete:
		return tr.OnDelete(eff)
	case update.Copy:
		return tr.OnCopy(eff)
	default:
		return fmt.Errorf("provtest: unknown op type %T", op)
	}
}

// AllSorted returns every record in the backend ordered by (Tid, Loc), the
// display order of the paper's Figure 5 — a drain of the ScanAll cursor.
func AllSorted(b provstore.Backend) ([]provstore.Record, error) {
	return provstore.CollectScan(b.ScanAll(context.Background()))
}
