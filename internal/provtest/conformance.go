package provtest

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"testing"

	"repro/internal/path"
	"repro/internal/provstore"
)

// This file is the backend conformance suite: one set of cursor-contract
// checks every Backend implementation runs instead of each package keeping
// its own copy-pasted variants. A backend passes when every scan kind
// streams the documented membership in the documented order, ScanAllAfter
// is exactly a keyset seek into the ScanAll order, breaking out of a cursor
// releases its resources (proven by the store remaining fully usable), and
// cancellation surfaces as the in-stream terminal error — before the first
// record for a pre-cancelled context, between records otherwise.
//
// Packages run it against their own store shape:
//
//	func TestConformance(t *testing.T) {
//		provtest.Conformance(t, func(t *testing.T) provstore.Backend {
//			return openMyBackend(t)
//		})
//	}

// conformanceFixture is the record set the suite loads: three databases,
// nested locations (so prefix and ancestor scans have real work), all three
// op kinds, several records per transaction, and one transaction gap.
func conformanceFixture() []provstore.Record {
	rec := func(tid int64, op provstore.OpKind, loc, src string) provstore.Record {
		r := provstore.Record{Tid: tid, Op: op, Loc: path.MustParse(loc)}
		if src != "" {
			r.Src = path.MustParse(src)
		}
		return r
	}
	return []provstore.Record{
		rec(1, provstore.OpInsert, "S/a", ""),
		rec(1, provstore.OpInsert, "S/a/x", ""),
		rec(1, provstore.OpInsert, "S/a/x/deep", ""),
		rec(1, provstore.OpInsert, "S/b", ""),
		rec(2, provstore.OpCopy, "T/c1", "S/a"),
		rec(2, provstore.OpCopy, "T/c1/x", "S/a/x"),
		rec(2, provstore.OpInsert, "T/c2", ""),
		rec(3, provstore.OpCopy, "T/c2/y", "T/c1/x"),
		rec(3, provstore.OpDelete, "S/b", ""),
		rec(3, provstore.OpInsert, "T/c1/z", ""),
		rec(4, provstore.OpCopy, "U/m", "T/c2"),
		rec(4, provstore.OpCopy, "U/m/y", "T/c2/y"),
		rec(4, provstore.OpInsert, "T/c1/x", ""),
		rec(6, provstore.OpDelete, "T/c1/z", ""),
		rec(6, provstore.OpCopy, "T/c3", "U/m"),
		rec(6, provstore.OpInsert, "T/c3/w", ""),
	}
}

// Conformance runs the cursor-contract conformance suite. open must return
// a fresh, empty backend each call (each subtest loads its own fixture);
// cleanup belongs to open via t.Cleanup.
func Conformance(t *testing.T, open func(t *testing.T) provstore.Backend) {
	t.Run("ScanOrdering", func(t *testing.T) { conformScanOrdering(t, open(t)) })
	t.Run("SeekEquivalence", func(t *testing.T) { conformSeek(t, open(t)) })
	t.Run("EarlyBreakReleases", func(t *testing.T) { conformEarlyBreak(t, open(t)) })
	t.Run("CancelMidStream", func(t *testing.T) { conformCancelMidStream(t, open(t)) })
	t.Run("PreCancelledContext", func(t *testing.T) { conformPreCancelled(t, open(t)) })
}

func loadConformanceFixture(t *testing.T, b provstore.Backend) []provstore.Record {
	t.Helper()
	recs := conformanceFixture()
	if err := b.Append(context.Background(), recs); err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return recs
}

// sameSeq fails unless got and want hold the same records in the same
// order (keys, ops and sources all compared).
func sameSeq(t *testing.T, what string, got, want []provstore.Record) {
	t.Helper()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("%s:\n got  %v\nwant %v", what, got, want)
	}
}

// conformScanOrdering drains every scan kind and checks membership and
// order against the documented contract, computed independently from the
// fixture slice.
func conformScanOrdering(t *testing.T, b provstore.Backend) {
	ctx := context.Background()
	recs := loadConformanceFixture(t, b)

	filtered := func(keep func(provstore.Record) bool, cmp func(a, b provstore.Record) int) []provstore.Record {
		var out []provstore.Record
		for _, r := range recs {
			if keep(r) {
				out = append(out, r)
			}
		}
		slices.SortFunc(out, cmp)
		return out
	}

	// ScanAll: the whole relation in strictly increasing (Tid, Loc) order —
	// strict, because {Tid, Loc} is a key.
	all, err := provstore.CollectScan(b.ScanAll(ctx))
	if err != nil {
		t.Fatalf("ScanAll: %v", err)
	}
	sameSeq(t, "ScanAll", all, filtered(func(provstore.Record) bool { return true }, provstore.CompareTidLoc))
	for i := 1; i < len(all); i++ {
		if provstore.CompareTidLoc(all[i-1], all[i]) >= 0 {
			t.Fatalf("ScanAll not strictly (Tid, Loc)-increasing at %d: %v !< %v", i, all[i-1], all[i])
		}
	}

	// ScanTid: one transaction's records, ordered by Loc. Probe every tid
	// plus one absent (5) and one past the end.
	for _, tid := range []int64{1, 2, 3, 4, 5, 6, 99} {
		got, err := provstore.CollectScan(b.ScanTid(ctx, tid))
		if err != nil {
			t.Fatalf("ScanTid(%d): %v", tid, err)
		}
		sameSeq(t, fmt.Sprintf("ScanTid(%d)", tid), got,
			filtered(func(r provstore.Record) bool { return r.Tid == tid }, provstore.CompareLocTid))
	}

	// ScanLoc: every record at exactly loc, ordered by Tid.
	for _, loc := range []string{"T/c1/x", "S/b", "T/c1", "T/absent"} {
		p := path.MustParse(loc)
		got, err := provstore.CollectScan(b.ScanLoc(ctx, p))
		if err != nil {
			t.Fatalf("ScanLoc(%s): %v", loc, err)
		}
		sameSeq(t, fmt.Sprintf("ScanLoc(%s)", loc), got,
			filtered(func(r provstore.Record) bool { return r.Loc.Equal(p) },
				func(a, b provstore.Record) int { return int(a.Tid - b.Tid) }))
	}

	// ScanLocPrefix: the subtree at prefix (inclusive), ordered (Loc, Tid).
	for _, prefix := range []string{"T/c1", "S", "U/m", "T/c2/y", "X"} {
		p := path.MustParse(prefix)
		got, err := provstore.CollectScan(b.ScanLocPrefix(ctx, p))
		if err != nil {
			t.Fatalf("ScanLocPrefix(%s): %v", prefix, err)
		}
		sameSeq(t, fmt.Sprintf("ScanLocPrefix(%s)", prefix), got,
			filtered(func(r provstore.Record) bool { return p.IsPrefixOf(r.Loc) }, provstore.CompareLocTid))
	}

	// ScanLocWithAncestors: records at loc or any strict ancestor, ordered
	// (Tid, Loc) — the one-round-trip feed of hierarchical inference.
	for _, loc := range []string{"T/c1/x", "S/a/x/deep", "T/c3/w", "U/m/y"} {
		p := path.MustParse(loc)
		got, err := provstore.CollectScan(b.ScanLocWithAncestors(ctx, p))
		if err != nil {
			t.Fatalf("ScanLocWithAncestors(%s): %v", loc, err)
		}
		sameSeq(t, fmt.Sprintf("ScanLocWithAncestors(%s)", loc), got,
			filtered(func(r provstore.Record) bool { return r.Loc.IsPrefixOf(p) }, provstore.CompareTidLoc))
	}

	// The scalar views agree with the drained relation.
	tids, err := b.Tids(ctx)
	if err != nil {
		t.Fatalf("Tids: %v", err)
	}
	if want := []int64{1, 2, 3, 4, 6}; fmt.Sprint(tids) != fmt.Sprint(want) {
		t.Errorf("Tids = %v, want %v", tids, want)
	}
	if maxT, err := b.MaxTid(ctx); err != nil || maxT != 6 {
		t.Errorf("MaxTid = %d, %v; want 6", maxT, err)
	}
	if n, err := b.Count(ctx); err != nil || n != len(recs) {
		t.Errorf("Count = %d, %v; want %d", n, err, len(recs))
	}
}

// conformSeek pins ScanAllAfter as a pure keyset seek: at every stored key
// it yields exactly the ScanAll suffix strictly after that key, and at
// synthetic keys (before the start, between stored keys, past the end) it
// lands on the successor.
func conformSeek(t *testing.T, b provstore.Backend) {
	ctx := context.Background()
	loadConformanceFixture(t, b)
	full, err := provstore.CollectScan(b.ScanAll(ctx))
	if err != nil {
		t.Fatalf("ScanAll: %v", err)
	}
	for k, rec := range full {
		got, err := provstore.CollectScan(b.ScanAllAfter(ctx, rec.Tid, rec.Loc))
		if err != nil {
			t.Fatalf("ScanAllAfter(%d, %s): %v", rec.Tid, rec.Loc, err)
		}
		sameSeq(t, fmt.Sprintf("ScanAllAfter(%d, %s)", rec.Tid, rec.Loc), got, full[k+1:])
	}
	synthetic := []struct {
		tid int64
		loc string
	}{
		{0, ""},         // before the start: the full table
		{1, ""},         // the tid-range seek key: everything with Tid >= 1
		{3, ""},         // everything with Tid >= 3 (root sorts below every stored loc)
		{2, "T/c1/q"},   // between stored keys of one transaction
		{5, "anything"}, // inside the transaction gap
		{99, ""},        // past the end: empty
	}
	for _, s := range synthetic {
		after := provstore.Record{Tid: s.tid, Loc: path.MustParse(s.loc)}
		var want []provstore.Record
		for _, r := range full {
			if provstore.CompareTidLoc(r, after) > 0 {
				want = append(want, r)
			}
		}
		got, err := provstore.CollectScan(b.ScanAllAfter(ctx, after.Tid, after.Loc))
		if err != nil {
			t.Fatalf("ScanAllAfter(%d, %q): %v", s.tid, s.loc, err)
		}
		sameSeq(t, fmt.Sprintf("ScanAllAfter(%d, %q)", s.tid, s.loc), got, want)
	}
}

// conformEarlyBreak breaks out of every scan kind after one record and then
// proves the store is fully usable — a write proceeds (no lock is still
// held) and a full drain still works (no cursor state leaked into the
// store).
func conformEarlyBreak(t *testing.T, b provstore.Backend) {
	ctx := context.Background()
	loadConformanceFixture(t, b)
	scans := map[string]func() func(func(provstore.Record, error) bool){
		"ScanAll":       func() func(func(provstore.Record, error) bool) { return b.ScanAll(ctx) },
		"ScanAllAfter":  func() func(func(provstore.Record, error) bool) { return b.ScanAllAfter(ctx, 2, path.Path{}) },
		"ScanTid":       func() func(func(provstore.Record, error) bool) { return b.ScanTid(ctx, 2) },
		"ScanLoc":       func() func(func(provstore.Record, error) bool) { return b.ScanLoc(ctx, path.MustParse("T/c1/x")) },
		"ScanLocPrefix": func() func(func(provstore.Record, error) bool) { return b.ScanLocPrefix(ctx, path.MustParse("T/c1")) },
		"ScanLocWithAncestors": func() func(func(provstore.Record, error) bool) {
			return b.ScanLocWithAncestors(ctx, path.MustParse("T/c1/x"))
		},
	}
	for name, mk := range scans {
		n := 0
		for _, err := range mk() {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			n++
			break
		}
		if n != 1 {
			t.Fatalf("%s yielded %d records before break, want 1", name, n)
		}
	}
	// No broken cursor may still hold a lock or poison the store.
	if err := b.Append(ctx, []provstore.Record{{Tid: 9, Op: provstore.OpInsert, Loc: path.MustParse("T/after-break")}}); err != nil {
		t.Fatalf("append after broken cursors: %v", err)
	}
	got, err := provstore.CollectScan(b.ScanAll(ctx))
	if err != nil {
		t.Fatalf("full drain after broken cursors: %v", err)
	}
	if len(got) != len(conformanceFixture())+1 {
		t.Fatalf("drain after broken cursors yielded %d records, want %d", len(got), len(conformanceFixture())+1)
	}
}

// conformCancelMidStream cancels the context between yields. The contract:
// iteration terminates promptly, and a stream that does not run to its
// natural end must surface the cancellation as its in-stream terminal
// error — never a silent truncation. (A remote cursor whose remaining
// bytes were already in flight may legitimately complete instead.)
func conformCancelMidStream(t *testing.T, b provstore.Backend) {
	recs := loadConformanceFixture(t, b)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	var terminal error
	for _, err := range b.ScanAll(ctx) {
		if err != nil {
			terminal = err
			break
		}
		n++
		if n == 3 {
			cancel()
		}
	}
	switch {
	case terminal != nil:
		if !errors.Is(terminal, context.Canceled) {
			t.Fatalf("cancel mid-stream yielded %v, want context.Canceled", terminal)
		}
	case n < len(recs):
		t.Fatalf("stream ended silently after %d of %d records with no error", n, len(recs))
	}
}

// conformPreCancelled runs every scan kind (and the scalar reads) under an
// already-cancelled context: exactly one yielded pair carrying the
// cancellation, zero records.
func conformPreCancelled(t *testing.T, b provstore.Backend) {
	loadConformanceFixture(t, b)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scans := map[string]func(func(provstore.Record, error) bool){
		"ScanAll":              b.ScanAll(ctx),
		"ScanAllAfter":         b.ScanAllAfter(ctx, 1, path.Path{}),
		"ScanTid":              b.ScanTid(ctx, 2),
		"ScanLoc":              b.ScanLoc(ctx, path.MustParse("T/c1/x")),
		"ScanLocPrefix":        b.ScanLocPrefix(ctx, path.MustParse("T/c1")),
		"ScanLocWithAncestors": b.ScanLocWithAncestors(ctx, path.MustParse("T/c1/x")),
	}
	for name, scan := range scans {
		recs, err := provstore.CollectScan(scan)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s on cancelled ctx = %v, want context.Canceled", name, err)
		}
		if len(recs) != 0 {
			t.Errorf("%s on cancelled ctx yielded %d records", name, len(recs))
		}
	}
	if _, err := b.MaxTid(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("MaxTid on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, _, err := b.Lookup(ctx, 1, path.MustParse("S/a")); !errors.Is(err, context.Canceled) {
		t.Errorf("Lookup on cancelled ctx = %v, want context.Canceled", err)
	}
}
