package cpdb_test

// Acceptance tests of the replicated provenance store at the public
// surface: a session over replicated:// must be observably identical to one
// over the primary's scheme alone, whatever the read policy, and closing
// the session must leave every replica converged with the primary.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	cpdb "repro"
	"repro/internal/figures"
	"repro/internal/provrepl"
	"repro/internal/provstore"
)

// runReplCLI runs the paper's Figure 3 script with queries and a dump over
// the given backend DSN.
func runReplCLI(t *testing.T, backendDSN string) string {
	t.Helper()
	script := filepath.Join(t.TempDir(), "fig3.cpdb")
	if err := os.WriteFile(script, []byte(figures.Script), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cfg := cpdb.CLIConfig{
		Demo:        true,
		Script:      script,
		Method:      "HT",
		CommitEvery: 5,
		Backend:     backendDSN,
		Queries:     cpdb.StringList{"hist T/c2/y", "src T/c4/y", "mod T", "trace T/c1/y"},
		Dump:        true,
	}
	if err := cpdb.RunCLI(cfg, &out); err != nil {
		t.Fatalf("RunCLI(%s): %v", backendDSN, err)
	}
	return out.String()
}

// TestCLIEquivalenceOverReplicated is the acceptance bar: the full CLI
// golden workload over replicated://?primary=mem://&replica=mem:// is
// byte-identical to mem://, under both read policies (with lag=0, fan-out
// reads only ever come from fully caught-up replicas, so even read=any
// changes nothing observable — and no lagging-replica note appears).
func TestCLIEquivalenceOverReplicated(t *testing.T) {
	want := runReplCLI(t, "mem://")
	for _, dsn := range []string{
		"replicated://?primary=mem://&replica=mem://",
		"replicated://?primary=mem://&replica=mem://&replica=mem://&read=any&poll=1ms",
	} {
		got := runReplCLI(t, dsn)
		if got != want {
			t.Errorf("%s output differs from mem://\n--- mem ---\n%s--- replicated ---\n%s", dsn, want, got)
		}
		if strings.Contains(got, "lagging") {
			t.Errorf("%s printed a lagging-replica note under lag=0:\n%s", dsn, got)
		}
	}
}

// TestSessionCloseConvergesReplicas: Session.Close over a replicated
// backend drains the appliers, so the replicas hold exactly the primary's
// records once Close returns — the durability contract a failover target
// needs.
func TestSessionCloseConvergesReplicas(t *testing.T) {
	backend, err := cpdb.OpenBackend("replicated://?primary=mem://&replica=mem://&poll=1ms")
	if err != nil {
		t.Fatal(err)
	}
	rb := backend.(*provrepl.ReplicatedBackend)
	s, err := cpdb.New(cpdb.Config{
		Target:  cpdb.NewMemTarget("T", figures.T0()),
		Sources: []cpdb.Source{cpdb.NewMemSource("S1", figures.S1()), cpdb.NewMemSource("S2", figures.S2())},
		Method:  cpdb.HierTrans,
		Backend: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(figures.Script); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := provstore.CollectScan(rb.Primary().ScanAll(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("primary empty after the golden workload")
	}
	got, err := provstore.CollectScan(rb.Replica(0).ScanAll(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replica after Close holds %d records, primary %d — Close did not drain", len(got), len(want))
	}
}
