package cpdb

import (
	"repro/internal/netsim"
	"repro/internal/path"
	"repro/internal/provquery"
	"repro/internal/provstore"
	"repro/internal/relprov"
	"repro/internal/relstore"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/wrapper"
	"repro/internal/xmlstore"
)

// Re-exported core types. The implementation lives under internal/; these
// aliases are the public surface.
type (
	// Path addresses one node in a forest of databases ("T/c1/y").
	Path = path.Path
	// Node is one node of the unordered edge-labelled tree data model.
	Node = tree.Node
	// M is a literal tree description for building fixtures.
	M = tree.M
	// Method selects a provenance storage strategy.
	Method = provstore.Method
	// Record is one row of the Prov relation.
	Record = provstore.Record
	// Backend persists provenance records.
	Backend = provstore.Backend
	// Source is a wrapped, browsable database (Figure 6 SourceDB).
	Source = wrapper.Source
	// Target is a wrapped, editable database (Figure 6 TargetDB).
	Target = wrapper.Target
	// TraceResult is the backward history of one location.
	TraceResult = provquery.TraceResult
	// Event is one step of a trace.
	Event = provquery.Event
	// Origin classifies how a trace ended.
	Origin = provquery.Origin
	// Federation joins several databases' provenance stores.
	Federation = provquery.Federation
	// Meter accumulates virtual time per operation category.
	Meter = netsim.Meter
)

// The four storage methods, in the paper's order.
const (
	Naive         = provstore.Naive
	Hierarchical  = provstore.Hierarchical
	Transactional = provstore.Transactional
	HierTrans     = provstore.HierTrans
)

// Trace origins.
const (
	OriginInserted    = provquery.OriginInserted
	OriginExternal    = provquery.OriginExternal
	OriginPreexisting = provquery.OriginPreexisting
)

// ParsePath parses the textual form of a path.
func ParsePath(s string) (Path, error) { return path.Parse(s) }

// MustParsePath is ParsePath for known-good literals; it panics on error.
func MustParsePath(s string) Path { return path.MustParse(s) }

// ParseMethod parses "N", "T", "H" or "HT".
func ParseMethod(s string) (Method, error) { return provstore.ParseMethod(s) }

// BuildTree constructs a tree from a literal description (see M).
func BuildTree(m M) *Node { return tree.Build(m) }

// NewLeaf returns a leaf node carrying a data value.
func NewLeaf(v string) *Node { return tree.NewLeaf(v) }

// NewTree returns the empty tree {}.
func NewTree() *Node { return tree.NewTree() }

// NewMemTarget returns an in-memory tree-database target (an xmlstore, the
// package's Timber stand-in) wrapped for editing. initial may be nil.
func NewMemTarget(name string, initial *Node) Target {
	return wrapper.NewXMLTarget(xmlstore.NewMem(name, initial))
}

// NewMemSource returns an in-memory tree-database source.
func NewMemSource(name string, initial *Node) Source {
	return wrapper.NewXMLTarget(xmlstore.NewMem(name, initial))
}

// OpenFileTarget opens (or creates) a file-persisted tree-database target.
func OpenFileTarget(name, file string, initial *Node) (Target, error) {
	s, err := xmlstore.Open(name, file)
	if err != nil {
		s, err = xmlstore.Create(name, file, initial)
		if err != nil {
			return nil, err
		}
	}
	return wrapper.NewXMLTarget(s), nil
}

// NewRelSource wraps a relational database (the package's MySQL stand-in)
// as a read-only source presenting the four-level DB/R/tid/F view.
func NewRelSource(name string, db *relstore.DB, tables ...string) Source {
	return wrapper.NewRelSource(name, db, tables...)
}

// NewMemBackend returns an in-memory provenance store backend.
func NewMemBackend() Backend { return provstore.NewMemBackend() }

// NewShardedMemBackend returns a provenance backend partitioned across n
// independently locked in-memory shards by hash of each record's
// root-relative location. Appends touching different shards proceed in
// parallel and queries scatter-gather. Sessions sharing one backend must
// partition the transaction-id space via Config.StartTid — each session
// numbers its own transactions, and colliding {Tid, Loc} keys are rejected
// as duplicates.
func NewShardedMemBackend(n int) Backend { return provstore.NewShardedMem(n) }

// NewShardedBackend partitions provenance records across the given shard
// stores (e.g. one relational store per shard). See NewShardedMemBackend.
func NewShardedBackend(shards ...Backend) (Backend, error) {
	return provstore.NewSharded(shards...)
}

// CreateRelBackend creates a relational provenance store in a new database
// file, as the paper stored its Prov table in MySQL.
func CreateRelBackend(file string) (Backend, error) {
	db, err := relstore.Create(file)
	if err != nil {
		return nil, err
	}
	return relprov.Create(db)
}

// CreateDurableRelBackend creates a relational provenance store with a
// write-ahead log (file + ".wal") and group commit: every append batch is
// durable before it returns, at a constant fsync cost per batch — pair
// with Config.BatchSize to amortize it over many transactions. Reopen with
// OpenDurableRelBackend (which also repairs torn pages after a crash), and
// release the files by type-asserting the backend to io.Closer.
func CreateDurableRelBackend(file string) (Backend, error) {
	db, err := relstore.Create(file)
	if err != nil {
		return nil, err
	}
	w, err := relstore.CreateWAL(file + ".wal")
	if err != nil {
		db.Close()
		return nil, err
	}
	b, err := relprov.Create(db)
	if err != nil {
		w.Close()
		db.Close()
		return nil, err
	}
	b.EnableGroupCommit(w)
	return b, nil
}

// OpenRelBackend opens an existing relational provenance store.
func OpenRelBackend(file string) (Backend, error) {
	db, err := relstore.Open(file)
	if err != nil {
		return nil, err
	}
	return relprov.Open(db)
}

// OpenDurableRelBackend reopens a store created by CreateDurableRelBackend:
// it first replays the write-ahead log over the store file, repairing any
// torn pages a crash left behind, then resumes group-commit operation on
// the same log.
func OpenDurableRelBackend(file string) (Backend, error) {
	if _, err := relstore.RecoverPager(file, file+".wal"); err != nil {
		return nil, err
	}
	db, err := relstore.Open(file)
	if err != nil {
		return nil, err
	}
	w, err := relstore.OpenWAL(file + ".wal")
	if err != nil {
		db.Close()
		return nil, err
	}
	b, err := relprov.Open(db)
	if err != nil {
		w.Close()
		db.Close()
		return nil, err
	}
	b.EnableGroupCommit(w)
	return b, nil
}

// NewFederation returns an empty provenance federation for Own queries.
func NewFederation() *Federation { return provquery.NewFederation() }

// RegisterProvenance attaches a session's provenance store to a federation
// under the session's target database name.
func RegisterProvenance(f *Federation, s *Session) {
	f.Register(s.TargetName(), provquery.New(s.BackendStore()))
}

// ParseScript parses an update script in the paper's Figure 3 syntax.
func ParseScript(src string) (update.Sequence, error) { return update.ParseScript(src) }
