package cpdb

import (
	"errors"
	"fmt"
	"io/fs"

	"repro/internal/netsim"
	"repro/internal/path"
	_ "repro/internal/provhttp" // registers the cpdb:// network driver
	"repro/internal/provplan"
	"repro/internal/provquery"
	"repro/internal/provstore"
	_ "repro/internal/relprov" // registers the rel:// backend driver
	"repro/internal/relstore"
	"repro/internal/tree"
	"repro/internal/update"
	"repro/internal/wrapper"
	"repro/internal/xmlstore"
)

// Re-exported core types. The implementation lives under internal/; these
// aliases are the public surface.
type (
	// Path addresses one node in a forest of databases ("T/c1/y").
	Path = path.Path
	// Node is one node of the unordered edge-labelled tree data model.
	Node = tree.Node
	// M is a literal tree description for building fixtures.
	M = tree.M
	// Method selects a provenance storage strategy.
	Method = provstore.Method
	// Record is one row of the Prov relation.
	Record = provstore.Record
	// Backend persists provenance records.
	Backend = provstore.Backend
	// DSN is a parsed backend data source name (see OpenBackend).
	DSN = provstore.DSN
	// Driver opens backends for one DSN scheme (see RegisterDriver).
	Driver = provstore.Driver
	// DriverFunc adapts a function to the Driver interface.
	DriverFunc = provstore.DriverFunc
	// Source is a wrapped, browsable database (Figure 6 SourceDB).
	Source = wrapper.Source
	// Target is a wrapped, editable database (Figure 6 TargetDB).
	Target = wrapper.Target
	// TraceResult is the backward history of one location.
	TraceResult = provquery.TraceResult
	// Event is one step of a trace.
	Event = provquery.Event
	// Origin classifies how a trace ended.
	Origin = provquery.Origin
	// Federation joins several databases' provenance stores.
	Federation = provquery.Federation
	// Meter accumulates virtual time per operation category.
	Meter = netsim.Meter
	// PlanQuery is one declarative provenance query — the AST Session.Plan
	// compiles, and the JSON body of the daemon's POST /v1/query.
	PlanQuery = provplan.Query
	// PlanResult is a drained plan result, decoded by query kind.
	PlanResult = provplan.Result
	// PlanRow is one element of a streaming plan result (Query.PlanRows).
	PlanRow = provplan.Row
)

// The four storage methods, in the paper's order.
const (
	Naive         = provstore.Naive
	Hierarchical  = provstore.Hierarchical
	Transactional = provstore.Transactional
	HierTrans     = provstore.HierTrans
)

// Trace origins.
const (
	OriginInserted    = provquery.OriginInserted
	OriginExternal    = provquery.OriginExternal
	OriginPreexisting = provquery.OriginPreexisting
)

// ParsePath parses the textual form of a path.
func ParsePath(s string) (Path, error) { return path.Parse(s) }

// ParsePlanQuery parses the textual form of a declarative provenance query
// ("select where loc>=T/c2 and op=C order loc-tid limit 10", "trace T/c3
// asof 5", …); see internal/provplan for the full grammar. The parsed query
// runs via Session.Plan / Query.PlanQuery.
func ParsePlanQuery(s string) (*PlanQuery, error) { return provplan.Parse(s) }

// MustParsePath is ParsePath for known-good literals; it panics on error.
func MustParsePath(s string) Path { return path.MustParse(s) }

// ParseMethod parses "N", "T", "H" or "HT".
func ParseMethod(s string) (Method, error) { return provstore.ParseMethod(s) }

// BuildTree constructs a tree from a literal description (see M).
func BuildTree(m M) *Node { return tree.Build(m) }

// NewLeaf returns a leaf node carrying a data value.
func NewLeaf(v string) *Node { return tree.NewLeaf(v) }

// NewTree returns the empty tree {}.
func NewTree() *Node { return tree.NewTree() }

// NewMemTarget returns an in-memory tree-database target (an xmlstore, the
// package's Timber stand-in) wrapped for editing. initial may be nil.
func NewMemTarget(name string, initial *Node) Target {
	return wrapper.NewXMLTarget(xmlstore.NewMem(name, initial))
}

// NewMemSource returns an in-memory tree-database source.
func NewMemSource(name string, initial *Node) Source {
	return wrapper.NewXMLTarget(xmlstore.NewMem(name, initial))
}

// OpenFileTarget opens a file-persisted tree-database target, creating the
// file (with the given initial tree) only when it does not exist yet. An
// existing but unreadable or corrupt file is an error — re-initializing it
// would silently discard the curated database.
func OpenFileTarget(name, file string, initial *Node) (Target, error) {
	s, err := xmlstore.Open(name, file)
	if errors.Is(err, fs.ErrNotExist) {
		s, err = xmlstore.Create(name, file, initial)
	}
	if err != nil {
		return nil, err
	}
	return wrapper.NewXMLTarget(s), nil
}

// NewRelSource wraps a relational database (the package's MySQL stand-in)
// as a read-only source presenting the four-level DB/R/tid/F view.
func NewRelSource(name string, db *relstore.DB, tables ...string) Source {
	return wrapper.NewRelSource(name, db, tables...)
}

// --- provenance store openers ----------------------------------------------

// OpenBackend opens a provenance store from a data source name, dispatching
// on its URI scheme through the backend driver registry (see
// RegisterDriver). Built-in schemes:
//
//	mem://                              in-memory store
//	mem://?shards=8                     8 hash-partitioned in-memory shards
//	rel://prov.db?create=1              relational store in prov.db
//	rel://prov.db?create=1&durable=1    … with WAL-backed group commit
//	rel://prov.db?durable=1             reopen after a crash (log replay)
//	sharded://?shards=4&each=rel%3A%2F%2Fs%25d.db%3Fcreate%3D1
//	                                    4 relational shards s0.db … s3.db
//	                                    (each is a URL-escaped DSN template,
//	                                    %d = shard index)
//	sharded://?shard=mem://&shard=mem://
//	                                    explicit per-shard DSNs
//	cpdb://10.0.0.5:7070                a cpdbd provenance service over the
//	                                    network (one HTTP round trip per
//	                                    store call; see cmd/cpdbd)
//	cpdb://[::1]:7070?timeout=5s        IPv6 authority, bounded round trips
//	replicated://?primary=DSN&replica=DSN&replica=DSN
//	                                    replicated store: synchronous writes
//	                                    to the primary, asynchronous
//	                                    log-shipping to each replica
//	                                    (&read=any fans reads across
//	                                    caught-up replicas with failover;
//	                                    &lag=N allows N tids of staleness;
//	                                    URL-escape nested DSNs carrying
//	                                    their own ?params)
//
// Backends holding files (rel, sharded-over-rel) are released by
// Session.Close, or directly by type-asserting to io.Closer. For cpdb://
// backends, Session.Close flushes the *service's* group-commit buffers and
// releases the client's connections; the daemon owns its store's lifecycle.
func OpenBackend(dsn string) (Backend, error) {
	return provstore.OpenDSN(dsn)
}

// ParseDSN parses a backend data source name without opening it.
func ParseDSN(dsn string) (DSN, error) { return provstore.ParseDSN(dsn) }

// RegisterDriver makes a backend driver available to OpenBackend under the
// given DSN scheme, as database/sql.Register does for SQL drivers. It
// panics on a duplicate scheme, so third-party drivers register from an
// init function.
func RegisterDriver(scheme string, d Driver) { provstore.RegisterDriver(scheme, d) }

// BackendSchemes returns the registered DSN schemes, sorted.
func BackendSchemes() []string { return provstore.Drivers() }

// mustOpen opens a DSN that cannot fail (the constructor wrappers below
// build them from validated inputs).
func mustOpen(dsn string) Backend {
	b, err := provstore.OpenDSN(dsn)
	if err != nil {
		panic(err)
	}
	return b
}

// NewMemBackend returns an in-memory provenance store backend.
//
// Equivalent to OpenBackend("mem://"), kept stable for existing callers.
func NewMemBackend() Backend { return mustOpen("mem://") }

// NewShardedMemBackend returns a provenance backend partitioned across n
// independently locked in-memory shards by hash of each record's
// root-relative location. Appends touching different shards proceed in
// parallel and queries scatter-gather. Sessions sharing one backend must
// partition the transaction-id space via Config.StartTid — each session
// numbers its own transactions, and colliding {Tid, Loc} keys are rejected
// as duplicates.
//
// Equivalent to OpenBackend("mem://?shards=N"), kept stable for existing
// callers.
func NewShardedMemBackend(n int) Backend {
	if n < 1 {
		n = 1
	}
	return mustOpen(fmt.Sprintf("mem://?shards=%d", n))
}

// NewShardedBackend partitions provenance records across the given shard
// stores (e.g. one relational store per shard). See NewShardedMemBackend;
// for stores expressible as DSNs, prefer OpenBackend("sharded://?…").
func NewShardedBackend(shards ...Backend) (Backend, error) {
	return provstore.NewSharded(shards...)
}

// relDSN builds the rel:// DSN for a store file, escaping the path.
func relDSN(file, params string) string {
	return "rel://" + provstore.EscapeDSNPath(file) + params
}

// CreateRelBackend creates a relational provenance store in a new database
// file, as the paper stored its Prov table in MySQL.
//
// Equivalent to OpenBackend("rel://FILE?create=1"), kept stable for
// existing callers.
func CreateRelBackend(file string) (Backend, error) {
	return OpenBackend(relDSN(file, "?create=1"))
}

// CreateDurableRelBackend creates a relational provenance store with a
// write-ahead log (file + ".wal") and group commit: every append batch is
// durable before it returns, at a constant fsync cost per batch — pair
// with Config.BatchSize to amortize it over many transactions. Reopen with
// OpenDurableRelBackend (which also repairs torn pages after a crash), and
// release the files with Session.Close (or by closing the backend).
//
// Equivalent to OpenBackend("rel://FILE?create=1&durable=1"), kept stable
// for existing callers.
func CreateDurableRelBackend(file string) (Backend, error) {
	return OpenBackend(relDSN(file, "?create=1&durable=1"))
}

// OpenRelBackend opens an existing relational provenance store.
//
// Equivalent to OpenBackend("rel://FILE"), kept stable for existing
// callers.
func OpenRelBackend(file string) (Backend, error) {
	return OpenBackend(relDSN(file, ""))
}

// OpenDurableRelBackend reopens a store created by CreateDurableRelBackend:
// it first replays the write-ahead log over the store file, repairing any
// torn pages a crash left behind, then resumes group-commit operation on
// the same log.
//
// Equivalent to OpenBackend("rel://FILE?durable=1"), kept stable for
// existing callers.
func OpenDurableRelBackend(file string) (Backend, error) {
	return OpenBackend(relDSN(file, "?durable=1"))
}

// CloseBackend flushes and closes a backend opened with OpenBackend (or any
// constructor) without going through a Session — sessions normally release
// their backend via Session.Close.
func CloseBackend(b Backend) error { return provstore.Close(b) }

// NewFederation returns an empty provenance federation for Own queries.
func NewFederation() *Federation { return provquery.NewFederation() }

// RegisterProvenance attaches a session's provenance store to a federation
// under the session's target database name.
func RegisterProvenance(f *Federation, s *Session) {
	f.Register(s.TargetName(), provquery.New(s.BackendStore()))
}

// ParseScript parses an update script in the paper's Figure 3 syntax.
func ParseScript(src string) (update.Sequence, error) { return update.ParseScript(src) }
