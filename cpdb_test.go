package cpdb_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	cpdb "repro"

	"repro/internal/figures"
	"repro/internal/tree"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func marshalXML(name string, n *cpdb.Node) ([]byte, error) {
	return tree.MarshalXML(name, n)
}

func figureSession(t *testing.T, m cpdb.Method) *cpdb.Session {
	t.Helper()
	s, err := cpdb.New(cpdb.Config{
		Target: cpdb.NewMemTarget("T", figures.T0()),
		Sources: []cpdb.Source{
			cpdb.NewMemSource("S1", figures.S1()),
			cpdb.NewMemSource("S2", figures.S2()),
		},
		Method:   m,
		StartTid: figures.FirstTid,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := cpdb.New(cpdb.Config{}); err == nil {
		t.Error("missing target should error")
	}
}

func TestSessionEndToEnd(t *testing.T) {
	for _, m := range []cpdb.Method{cpdb.Naive, cpdb.Hierarchical, cpdb.Transactional, cpdb.HierTrans} {
		s := figureSession(t, m)
		if s.Method() != m || s.TargetName() != "T" {
			t.Error("identity wrong")
		}
		if err := s.Run(figures.Script); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		if !s.View().Equal(figures.TPrime()) {
			t.Errorf("%v: view != T'", m)
		}
		n, err := s.RecordCount()
		if err != nil || n == 0 {
			t.Fatalf("%v: records = %d, %v", m, n, err)
		}
		b, err := s.RecordBytes()
		if err != nil || b <= 0 {
			t.Fatalf("%v: bytes = %d, %v", m, b, err)
		}
		recs, err := s.Records()
		if err != nil || len(recs) != n {
			t.Fatalf("%v: Records len %d vs count %d", m, len(recs), n)
		}
		if s.TotalOps() != 10 {
			t.Errorf("%v: TotalOps = %d", m, s.TotalOps())
		}
	}
}

// TestShardedSessionEquivalence: any Shards/BatchSize configuration stores
// exactly the provenance table of the default single-store write-through
// session — the paper's semantics are invariant under the scaling knobs.
func TestShardedSessionEquivalence(t *testing.T) {
	table := func(cfgTweak func(*cpdb.Config)) []string {
		t.Helper()
		cfg := cpdb.Config{
			Target: cpdb.NewMemTarget("T", figures.T0()),
			Sources: []cpdb.Source{
				cpdb.NewMemSource("S1", figures.S1()),
				cpdb.NewMemSource("S2", figures.S2()),
			},
			Method:          cpdb.HierTrans,
			StartTid:        figures.FirstTid,
			AutoCommitEvery: 3,
		}
		cfgTweak(&cfg)
		s, err := cpdb.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(figures.Script); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		recs, err := s.Records()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(recs))
		for i, r := range recs {
			out[i] = r.String()
		}
		return out
	}
	want := table(func(*cpdb.Config) {})
	cases := map[string]func(*cpdb.Config){
		"explicit-1-1":    func(c *cpdb.Config) { c.Shards, c.BatchSize = 1, 1 },
		"sharded":         func(c *cpdb.Config) { c.Shards = 4 },
		"batched":         func(c *cpdb.Config) { c.BatchSize = 16 },
		"sharded-batched": func(c *cpdb.Config) { c.Shards, c.BatchSize = 4, 16 },
		"sharded-backend": func(c *cpdb.Config) {
			c.Shards = 3
			c.Backend = cpdb.NewShardedMemBackend(3)
		},
	}
	for name, tweak := range cases {
		got := table(tweak)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: records diverge:\n got %v\nwant %v", name, got, want)
		}
	}
	// Shards > 1 with a non-sharded explicit backend is a config error.
	_, err := cpdb.New(cpdb.Config{
		Target:  cpdb.NewMemTarget("T", figures.T0()),
		Shards:  2,
		Backend: cpdb.NewMemBackend(),
	})
	if err == nil {
		t.Error("Shards>1 over a plain backend should error")
	}
}

// TestDurableRelBackend: the group-committing relational backend persists
// and reopens.
func TestDurableRelBackend(t *testing.T) {
	file := filepath.Join(t.TempDir(), "p.rel")
	b, err := cpdb.CreateDurableRelBackend(file)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cpdb.New(cpdb.Config{
		Target:    cpdb.NewMemTarget("T", figures.T0()),
		Sources:   []cpdb.Source{cpdb.NewMemSource("S1", figures.S1()), cpdb.NewMemSource("S2", figures.S2())},
		Method:    cpdb.HierTrans,
		Backend:   b,
		BatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(figures.Script); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := s.RecordCount()
	if err != nil || n == 0 {
		t.Fatalf("records = %d, %v", n, err)
	}
	if _, err := os.Stat(file + ".wal"); err != nil {
		t.Errorf("missing WAL file: %v", err)
	}
	// Reopen through the recovery path and keep working durably.
	if closer, ok := b.(io.Closer); ok {
		if err := closer.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		t.Fatal("durable backend should be closeable")
	}
	b2, err := cpdb.OpenDurableRelBackend(file)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.(io.Closer).Close()
	n2, err := b2.Count(context.Background())
	if err != nil || n2 != n {
		t.Fatalf("reopened count = %d, %v; want %d", n2, err, n)
	}
}

func TestSessionSingleOps(t *testing.T) {
	s := figureSession(t, cpdb.HierTrans)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(cpdb.MustParsePath("T"), "c9", cpdb.NewLeaf("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.CopyPaste(cpdb.MustParsePath("S1/a1"), cpdb.MustParsePath("T/pasted")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(cpdb.MustParsePath("T/c5")); err != nil {
		t.Fatal(err)
	}
	tid, err := s.Commit()
	if err != nil || tid != figures.FirstTid {
		t.Fatalf("Commit = %d, %v", tid, err)
	}
	v := s.View()
	if !v.HasChild("c9") || !v.HasChild("pasted") || v.HasChild("c5") {
		t.Errorf("ops lost: %s", v)
	}
	// Bad script surfaces a parse error.
	if err := s.Run("gibberish"); err == nil {
		t.Error("bad script should error")
	}
}

func TestSessionQueries(t *testing.T) {
	s := figureSession(t, cpdb.Naive)
	// One txn per op to match the Figure 5(a) numbering: run op by op.
	for _, line := range strings.Split(strings.TrimSpace(figures.Script), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		if err := s.Run(line); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tid, ok, err := s.Src(cpdb.MustParsePath("T/c4/y"))
	if err != nil || !ok || tid != 130 {
		t.Errorf("Src = %d, %v, %v", tid, ok, err)
	}
	hist, err := s.Hist(cpdb.MustParsePath("T/c2/y"))
	if err != nil || fmt.Sprint(hist) != "[126]" {
		t.Errorf("Hist = %v, %v", hist, err)
	}
	mod, err := s.Mod(cpdb.MustParsePath("T/c2"))
	if err != nil || fmt.Sprint(mod) != "[124 126]" {
		t.Errorf("Mod = %v, %v", mod, err)
	}
	tr, err := s.Trace(cpdb.MustParsePath("T/c3/x"))
	if err != nil || tr.Origin != cpdb.OriginExternal || tr.External.String() != "S1/a3/x" {
		t.Errorf("Trace = %+v, %v", tr, err)
	}
}

func TestRelBackendSession(t *testing.T) {
	file := filepath.Join(t.TempDir(), "prov.rel")
	backend, err := cpdb.CreateRelBackend(file)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cpdb.New(cpdb.Config{
		Target:  cpdb.NewMemTarget("T", figures.T0()),
		Sources: []cpdb.Source{cpdb.NewMemSource("S1", figures.S1())},
		Method:  cpdb.HierTrans,
		Backend: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(`copy S1/a1 into T/got`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	n, _ := s.RecordCount()
	if n != 1 {
		t.Errorf("rel-backed records = %d", n)
	}
	// Reopen the store read path.
	if _, err := cpdb.OpenRelBackend(file); err == nil {
		// The first handle still owns the file; either outcome is
		// acceptable as long as it does not panic. Creating over a bad
		// path must fail though.
	}
	if _, err := cpdb.CreateRelBackend(filepath.Join(t.TempDir(), "no", "such", "dir", "x.rel")); err == nil {
		t.Error("create in missing dir should fail")
	}
	if _, err := cpdb.OpenRelBackend(filepath.Join(t.TempDir(), "missing.rel")); err == nil {
		t.Error("open missing should fail")
	}
}

func TestFileTarget(t *testing.T) {
	file := filepath.Join(t.TempDir(), "t.xdb")
	tgt, err := cpdb.OpenFileTarget("T", file, figures.T0())
	if err != nil {
		t.Fatal(err)
	}
	s, err := cpdb.New(cpdb.Config{Target: tgt, Method: cpdb.Naive})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(`insert {fresh : 1} into T`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if !s.View().HasChild("fresh") {
		t.Error("insert lost")
	}
}

func TestFederationAPI(t *testing.T) {
	a := figureSession(t, cpdb.Naive)
	if err := a.Run(`copy S1/a1 into T/x`); err != nil {
		t.Fatal(err)
	}
	a.Commit()
	fed := cpdb.NewFederation()
	cpdb.RegisterProvenance(fed, a)
	steps, err := fed.Own(context.Background(), cpdb.MustParsePath("T/x/y"))
	if err != nil || len(steps) != 2 {
		t.Fatalf("Own = %+v, %v", steps, err)
	}
	if steps[1].DB != "S1" {
		t.Errorf("chain should end at S1: %+v", steps)
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := cpdb.ParsePath("a//b"); err == nil {
		t.Error("bad path parsed")
	}
	p, err := cpdb.ParsePath("T/a")
	if err != nil || p.String() != "T/a" {
		t.Error("ParsePath wrong")
	}
	if _, err := cpdb.ParseMethod("Z"); err == nil {
		t.Error("bad method parsed")
	}
	seq, err := cpdb.ParseScript("copy A/b into T/c")
	if err != nil || len(seq) != 1 {
		t.Error("ParseScript wrong")
	}
	if cpdb.NewTree().Size() != 1 || cpdb.BuildTree(cpdb.M{"a": 1}).Size() != 2 {
		t.Error("tree helpers wrong")
	}
	if cpdb.NewMemBackend() == nil {
		t.Error("backend helper wrong")
	}
}

func TestCLIDemo(t *testing.T) {
	var out strings.Builder
	cfg := cpdb.CLIConfig{
		Demo:        true,
		Script:      "-", // unused: no stdin in tests; use empty script instead
		Method:      "HT",
		CommitEvery: 5,
	}
	cfg.Script = ""
	cfg.Queries = cpdb.StringList{"hist T/c1", "mod T", "src T/c1", "trace T/c1"}
	if err := cpdb.RunCLI(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hist T/c1") {
		t.Errorf("output missing query results:\n%s", out.String())
	}
}

func TestCLIScriptAndDump(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "s.cpdb")
	writeFile(t, script, figures.Script)
	var out strings.Builder
	cfg := cpdb.CLIConfig{
		Demo:        true,
		Script:      script,
		Method:      "N",
		CommitEvery: 1,
		Dump:        true,
		Queries:     cpdb.StringList{"hist T/c2/y"},
	}
	if err := cpdb.RunCLI(cfg, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// Sessions start at tid 1 by default, so Figure 5(a)'s txn 126 is 6.
	for _, want := range []string{"applied 10 operations", "6 C T/c2/y S2/b3/y", "hist T/c2/y: copied by txns [6]"} {
		if !strings.Contains(s, want) {
			t.Errorf("CLI output missing %q:\n%s", want, s)
		}
	}
}

func TestCLIFiles(t *testing.T) {
	dir := t.TempDir()
	// Export the fixture databases as XML files.
	writeXML := func(name string, n *cpdb.Node) string {
		t.Helper()
		data, err := marshalXML(name, n)
		if err != nil {
			t.Fatal(err)
		}
		f := filepath.Join(dir, name+".xml")
		writeFile(t, f, string(data))
		return f
	}
	tf := writeXML("T", figures.T0())
	sf := writeXML("S1", figures.S1())
	script := filepath.Join(dir, "s.cpdb")
	writeFile(t, script, "copy S1/a2 into T/got")

	var out strings.Builder
	cfg := cpdb.CLIConfig{
		TargetSpec:  "T=" + tf,
		SourceSpecs: cpdb.StringList{"S1=" + sf},
		Script:      script,
		Method:      "HT",
		Dump:        true,
	}
	if err := cpdb.RunCLI(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "got") {
		t.Errorf("CLI file mode output:\n%s", out.String())
	}
}

func TestCLIErrors(t *testing.T) {
	var out strings.Builder
	if err := cpdb.RunCLI(cpdb.CLIConfig{Method: "HT"}, &out); err == nil {
		t.Error("missing target should error")
	}
	if err := cpdb.RunCLI(cpdb.CLIConfig{Demo: true, Method: "nope"}, &out); err == nil {
		t.Error("bad method should error")
	}
	if err := cpdb.RunCLI(cpdb.CLIConfig{Demo: true, Method: "N", Queries: cpdb.StringList{"bogus"}}, &out); err == nil {
		t.Error("bad query should error")
	}
	if err := cpdb.RunCLI(cpdb.CLIConfig{Demo: true, Method: "N", Queries: cpdb.StringList{"frob T/x"}}, &out); err == nil {
		t.Error("unknown query kind should error")
	}
	if err := cpdb.RunCLI(cpdb.CLIConfig{TargetSpec: "badspec", Method: "N"}, &out); err == nil {
		t.Error("bad target spec should error")
	}
	if err := cpdb.RunCLI(cpdb.CLIConfig{Demo: true, Method: "N", Script: filepath.Join(t.TempDir(), "missing")}, &out); err == nil {
		t.Error("missing script file should error")
	}
	var sl cpdb.StringList
	sl.Set("a")
	sl.Set("b")
	if sl.String() != "a,b" {
		t.Error("StringList wrong")
	}
}

// TestCLIAuthVerbs: root / prove / verify against a verified:// store —
// the end-to-end CLI path for the authenticated-store surface.
func TestCLIAuthVerbs(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "s.cpdb")
	writeFile(t, script, figures.Script)
	var out strings.Builder
	cfg := cpdb.CLIConfig{
		Demo:        true,
		Script:      script,
		Method:      "HT",
		CommitEvery: 1,
		Backend:     "verified://?inner=mem://",
		Queries:     cpdb.StringList{"root", "prove 6 T/c2/y", "verify"},
	}
	if err := cpdb.RunCLI(cfg, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"root ", "prove 6 T/c2/y: ok", "verify: ok"} {
		if !strings.Contains(s, want) {
			t.Errorf("CLI auth output missing %q:\n%s", want, s)
		}
	}

	// Errors: proofs from an unauthenticated store, malformed verbs.
	for _, tc := range []struct {
		backend string
		query   string
	}{
		{"", "root"},
		{"verified://?inner=mem://", "root extra"},
		{"verified://?inner=mem://", "prove notanumber T/c2/y"},
		{"verified://?inner=mem://", "prove 6"},
		{"verified://?inner=mem://", "verify extra"},
		{"verified://?inner=mem://", "prove 99 T/nowhere"},
	} {
		out.Reset()
		err := cpdb.RunCLI(cpdb.CLIConfig{
			Demo: true, Method: "N", Backend: tc.backend,
			Queries: cpdb.StringList{tc.query},
		}, &out)
		if err == nil {
			t.Errorf("query %q on backend %q should error", tc.query, tc.backend)
		}
	}
}

// TestSessionErrorsAreSessionErrors: errors from invalid ops surface.
func TestSessionErrors(t *testing.T) {
	s := figureSession(t, cpdb.Naive)
	if err := s.Insert(cpdb.MustParsePath("S1"), "x", nil); err == nil {
		t.Error("insert into source should error")
	}
	if err := s.Delete(cpdb.MustParsePath("T/none")); err == nil {
		t.Error("delete of missing should error")
	}
	if err := s.CopyPaste(cpdb.MustParsePath("Nowhere/a"), cpdb.MustParsePath("T/x")); err == nil {
		t.Error("copy from unknown db should error")
	}
	var errCheck error = errors.New("x")
	_ = errCheck
}
