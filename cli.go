package cpdb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/figures"
	"repro/internal/provauth"
	"repro/internal/provhttp"
	"repro/internal/provrepl"
	"repro/internal/provstore"
	"repro/internal/provtrace"
	"repro/internal/tree"
)

// StringList is a repeatable command-line flag value.
type StringList []string

// String implements flag.Value.
func (l *StringList) String() string { return strings.Join(*l, ",") }

// Set implements flag.Value.
func (l *StringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// CLIConfig is the configuration of the cpdb command-line shell.
type CLIConfig struct {
	// Demo loads the paper's Figure 3/4 fixture databases (T, S1, S2).
	Demo bool
	// TargetSpec is "NAME=file.xml" for the target database.
	TargetSpec string
	// SourceSpecs are "NAME=file.xml" entries for source databases.
	SourceSpecs StringList
	// Script is an update-script file path, "-" for stdin, or "" for none.
	Script string
	// Method is the provenance method abbreviation (N, H, T, HT).
	Method string
	// CommitEvery auto-commits every N operations (0 = one commit at end).
	CommitEvery int
	// Backend is a provenance-store DSN for OpenBackend ("mem://?shards=8",
	// "rel://prov.db?create=1&durable=1", "sharded://?…"); empty means the
	// in-memory default.
	Backend string
	// Shards partitions the provenance store (see Config.Shards).
	Shards int
	// BatchSize groups provenance appends (see Config.BatchSize).
	BatchSize int
	// Queries are provenance queries: "src|hist|mod|trace PATH", or
	// "plan QUERY" with a declarative query in the plan grammar
	// ("plan select where loc>=T/c2 and op=C order loc-tid").
	// Against an authenticated store (verified:// or a cpdb:// daemon
	// serving one) three more verbs work: "root" prints the signed-off
	// Merkle root, "prove TID LOC" fetches and checks one inclusion
	// proof, and "verify" re-checks every stored record against the root.
	Queries StringList
	// Analyze turns every "plan" query into EXPLAIN ANALYZE: per-operator
	// rows-in/rows-out/time print after the result. A single query opts in
	// with "plan -analyze QUERY".
	Analyze bool
	// Trace records a span trace across this invocation's queries and
	// prints its id after they run. Against a cpdb:// backend every RPC
	// stamps the open span's id, so the daemon (and any daemon it chains
	// to) stores its half of the trace under the same id — inspect the
	// merged tree afterwards with -query "traces ID".
	Trace bool
	// Dump prints the provenance table and final target tree.
	Dump bool
}

func loadSpec(spec string) (name string, root *tree.Node, err error) {
	name, file, ok := strings.Cut(spec, "=")
	if !ok {
		return "", nil, fmt.Errorf("cpdb: spec %q is not NAME=file.xml", spec)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return "", nil, err
	}
	_, root, err = tree.UnmarshalXML(data)
	if err != nil {
		return "", nil, fmt.Errorf("cpdb: loading %s: %w", file, err)
	}
	return name, root, nil
}

// RunCLI executes one command-line session, writing results to w.
func RunCLI(cfg CLIConfig, w io.Writer) error {
	method, err := ParseMethod(cfg.Method)
	if err != nil {
		return err
	}

	var target Target
	var sources []Source
	switch {
	case cfg.Demo:
		target = NewMemTarget("T", figures.T0())
		sources = []Source{
			NewMemSource("S1", figures.S1()),
			NewMemSource("S2", figures.S2()),
		}
	case cfg.TargetSpec != "":
		name, root, err := loadSpec(cfg.TargetSpec)
		if err != nil {
			return err
		}
		target = wrapStore(name, root)
		for _, spec := range cfg.SourceSpecs {
			sname, sroot, err := loadSpec(spec)
			if err != nil {
				return err
			}
			sources = append(sources, wrapStore(sname, sroot))
		}
	default:
		return fmt.Errorf("cpdb: need -demo or -target NAME=file.xml")
	}

	var backend Backend
	if cfg.Backend != "" {
		backend, err = OpenBackend(cfg.Backend)
		if err != nil {
			return err
		}
	}
	s, err := New(Config{
		Target:          target,
		Sources:         sources,
		Method:          method,
		Backend:         backend,
		AutoCommitEvery: cfg.CommitEvery,
		Shards:          cfg.Shards,
		BatchSize:       cfg.BatchSize,
	})
	if err != nil {
		if backend != nil {
			provstore.Close(backend)
		}
		return err
	}
	// Whatever the batching layer still buffers at exit is pushed down, and
	// file-backed stores opened from the DSN release their files.
	defer s.Close()

	if cfg.Script != "" {
		var script []byte
		if cfg.Script == "-" {
			script, err = io.ReadAll(os.Stdin)
		} else {
			script, err = os.ReadFile(cfg.Script)
		}
		if err != nil {
			return err
		}
		if err := s.Run(string(script)); err != nil {
			return err
		}
		// Flush a partially filled final transaction, if any.
		if _, err := s.Commit(); err != nil && !errors.Is(err, provstore.ErrNoTxn) {
			return err
		}
		fmt.Fprintf(w, "applied %d operations under method %s\n", s.TotalOps(), method)
	}

	qctx := context.Background()
	var rec *provtrace.Recorder
	if cfg.Trace {
		rec = provtrace.NewRecorder("", "")
		qctx = provtrace.WithRecorder(qctx, rec)
	}
	for _, q := range cfg.Queries {
		if err := runQuery(qctx, s, q, w, cfg.Analyze); err != nil {
			return err
		}
	}
	if rec != nil {
		fmt.Fprintf(w, "trace %s\n", rec.TraceID())
	}

	if cfg.Dump {
		fmt.Fprintf(w, "-- provenance table (%s) --\n", method)
		// Stream the table row by row off the backend cursor — the dump of
		// a huge (or remote) store never materializes the relation.
		for r, err := range s.Query().Records(context.Background()) {
			if err != nil {
				return err
			}
			fmt.Fprintln(w, r)
		}
		fmt.Fprintf(w, "-- target %s --\n%s\n", s.TargetName(), s.View())
		// A replicated:// backend under read=any with a lag allowance may
		// have served reads (including the dump above) from a replica that
		// trailed the primary; say so rather than let a short table pass as
		// the whole story. Under lag=0 this cannot happen and stays silent.
		if rb, ok := backend.(*provrepl.ReplicatedBackend); ok {
			if n := rb.LaggedReads(); n > 0 {
				fmt.Fprintf(w, "note: %d read(s) served by a replica lagging the primary (read=any, lag=%d); the dump may trail the latest commits\n", n, rb.LagBound())
			}
		}
		// Likewise for a cpdb://…?cache= client: cached answers are only as
		// fresh as the horizon the client last observed, so when any read in
		// this run was answered locally, say so. With caching off (the
		// default) this stays silent and the dump is byte-identical.
		if cc, ok := backend.(*provhttp.Client); ok {
			if hits, _ := cc.CacheStats(); hits > 0 {
				fmt.Fprintf(w, "note: %d read(s) served from the client result cache (cache=, horizon-keyed); answers reflect the last observed MaxTid\n", hits)
			}
		}
	}
	return nil
}

func runQuery(ctx context.Context, s *Session, q string, w io.Writer, analyze bool) error {
	kind, rest, ok := strings.Cut(strings.TrimSpace(q), " ")
	switch strings.ToLower(kind) {
	case "root", "prove", "verify":
		return runAuthQuery(ctx, s, strings.ToLower(kind), strings.TrimSpace(rest), w)
	case "traces":
		return runTraces(ctx, s, strings.TrimSpace(rest), w)
	}
	if !ok {
		return fmt.Errorf("cpdb: query %q is not 'src|hist|mod|trace PATH', 'plan QUERY', 'root', 'prove TID LOC', 'verify' or 'traces [-slow DUR] [ID]'", q)
	}
	if strings.EqualFold(kind, "plan") {
		return runPlan(ctx, s, rest, w, analyze)
	}
	p, err := ParsePath(strings.TrimSpace(rest))
	if err != nil {
		return err
	}
	switch strings.ToLower(kind) {
	case "src":
		tid, found, err := s.Src(p)
		if err != nil {
			return err
		}
		if found {
			fmt.Fprintf(w, "src %s: inserted by txn %d\n", p, tid)
		} else {
			fmt.Fprintf(w, "src %s: unknown (external or pre-existing)\n", p)
		}
	case "hist":
		tids, err := s.Hist(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "hist %s: copied by txns %v\n", p, tids)
	case "mod":
		tids, err := s.Mod(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "mod %s: modified by txns %v\n", p, tids)
	case "trace":
		tr, err := s.Trace(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "trace %s (%s):\n", p, tr.Origin)
		for _, ev := range tr.Events {
			fmt.Fprintf(w, "  %s\n", ev)
		}
		if tr.Origin == OriginExternal {
			fmt.Fprintf(w, "  chain leaves the database at %s\n", tr.External)
		}
	default:
		return fmt.Errorf("cpdb: unknown query kind %q", kind)
	}
	return nil
}

// runPlan parses, runs and prints one declarative plan query. Against a
// cpdb:// backend the whole query is one round trip to the daemon — with
// analyze on, the per-operator stats ride back as the result stream's
// trailer row, so it is still exactly one round trip.
func runPlan(ctx context.Context, s *Session, text string, w io.Writer, analyze bool) error {
	text = strings.TrimSpace(text)
	if rest, ok := strings.CutPrefix(text, "-analyze "); ok {
		analyze, text = true, rest
	}
	pq, err := ParsePlanQuery(text)
	if err != nil {
		return err
	}
	if analyze {
		cp := *pq
		cp.Analyze = true
		pq = &cp
	}
	res, err := s.Query(WithContext(ctx)).PlanQuery(pq)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plan %s:\n", pq)
	switch {
	case pq.Op == "trace":
		fmt.Fprintf(w, "  origin: %s\n", res.Trace.Origin)
		for _, ev := range res.Trace.Events {
			fmt.Fprintf(w, "  %s\n", ev)
		}
		if res.Trace.Origin == OriginExternal {
			fmt.Fprintf(w, "  chain leaves the database at %s\n", res.Trace.External)
		}
	case pq.Op == "src" || pq.Agg != "":
		if res.Found {
			fmt.Fprintf(w, "  %d\n", res.Value)
		} else if pq.Op == "src" {
			fmt.Fprintf(w, "  unknown (external or pre-existing)\n")
		} else {
			fmt.Fprintf(w, "  none\n")
		}
	case pq.Op == "mod" || pq.Op == "hist":
		fmt.Fprintf(w, "  txns %v\n", res.Tids)
	default:
		for _, r := range res.Records {
			fmt.Fprintf(w, "  %s\n", r)
		}
		fmt.Fprintf(w, "  (%d records)\n", len(res.Records))
	}
	if res.Analysis != nil {
		fmt.Fprintf(w, "  analyze: %d records scanned\n", res.Analysis.Scanned)
		for _, op := range res.Analysis.Ops {
			fmt.Fprintf(w, "  op=%s in=%d out=%d time=%s\n", op.Op, op.In, op.Out, time.Duration(op.NS))
		}
	}
	return nil
}

// sessionAuthority unwraps the session's backend chain (batching layers,
// size-charging wrappers) to the first store that serves Merkle proofs: a
// local verified:// AuthBackend, or a cpdb:// client whose daemon does.
func sessionAuthority(s *Session) (provauth.Authority, error) {
	var b Backend = s.BackendStore()
	for b != nil {
		if a, ok := b.(provauth.Authority); ok {
			return a, nil
		}
		u, ok := b.(interface{ Inner() provstore.Backend })
		if !ok {
			break
		}
		b = u.Inner()
	}
	return nil, errors.New("cpdb: this store serves no proofs; open it via -backend 'verified://?inner=DSN' (or cpdb:// to a daemon that does)")
}

// runAuthQuery serves the authenticated-store verbs. All three answer about
// committed state, so buffered writes are pushed down and the open
// transaction sealed first — otherwise a half-flushed transaction would
// read as tampering.
func runAuthQuery(ctx context.Context, s *Session, kind, rest string, w io.Writer) error {
	if err := s.Flush(); err != nil {
		return err
	}
	auth, err := sessionAuthority(s)
	if err != nil {
		return err
	}
	// The session's Flush drains the batching layer into the authority;
	// this one makes the authority seal the transaction those writes
	// opened.
	if f, ok := auth.(provstore.ContextFlusher); ok {
		if err := f.FlushContext(ctx); err != nil {
			return err
		}
	} else if f, ok := auth.(provstore.Flusher); ok {
		if err := f.Flush(); err != nil {
			return err
		}
	}
	switch kind {
	case "root":
		if rest != "" {
			return fmt.Errorf("cpdb: root takes no argument (got %q)", rest)
		}
		root, err := auth.Root(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "root %s\n", root)
	case "prove":
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return fmt.Errorf("cpdb: prove needs TID LOC (got %q)", rest)
		}
		tid, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("cpdb: prove: %q is not a transaction id", fields[0])
		}
		loc, err := ParsePath(fields[1])
		if err != nil {
			return err
		}
		proof, root, err := auth.Prove(ctx, tid, loc)
		if err != nil {
			return err
		}
		rec, found, err := s.BackendStore().Lookup(ctx, tid, loc)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("cpdb: prove %d %s: the store proved a record it will not return", tid, loc)
		}
		if err := provauth.VerifyRecord(root, rec, proof); err != nil {
			return fmt.Errorf("cpdb: prove %d %s: %w", tid, loc, err)
		}
		fmt.Fprintf(w, "prove %d %s: ok — leaf %d of %d under root %s\n", tid, loc, proof.LeafIndex, proof.TreeSize, root)
	case "verify":
		if rest != "" {
			return fmt.Errorf("cpdb: verify takes no argument (got %q)", rest)
		}
		root, err := auth.Root(ctx)
		if err != nil {
			return err
		}
		var n uint64
		for pr, err := range auth.ScanAllProven(ctx, 0, Path{}) {
			if err != nil {
				return fmt.Errorf("cpdb: verify: after %d record(s): %w", n, err)
			}
			if verr := pr.Verify(); verr != nil {
				return fmt.Errorf("cpdb: verify: record %d %s: %w", pr.Rec.Tid, pr.Rec.Loc, verr)
			}
			n++
		}
		// Every yielded record checked out; now the count must match the
		// root, or the store withheld records the log committed.
		if n != root.Size {
			return fmt.Errorf("cpdb: verify: store returned %d record(s) but the root covers %d", n, root.Size)
		}
		fmt.Fprintf(w, "verify: ok — %d record(s) match root %s\n", n, root)
	}
	return nil
}

// sessionTraces unwraps the session's backend chain to the first cpdb://
// client — traces live in a daemon's ring buffer, so the verb only works
// against a remote backend.
func sessionTraces(s *Session) (*provhttp.Client, error) {
	var b Backend = s.BackendStore()
	for b != nil {
		if c, ok := b.(*provhttp.Client); ok {
			return c, nil
		}
		u, ok := b.(interface{ Inner() provstore.Backend })
		if !ok {
			break
		}
		b = u.Inner()
	}
	return nil, errors.New("cpdb: traces live in a daemon's buffer; open the store via -backend cpdb://HOST:PORT (daemon started with -trace-buffer)")
}

// runTraces serves the "traces [-slow DUR] [ID]" verb: with an ID it fetches
// that trace — the daemon merges in the halves recorded by any daemon it
// chains to — and renders the span tree; without one it lists the daemon's
// buffered traces, newest first, optionally filtered to roots at least
// -slow long.
func runTraces(ctx context.Context, s *Session, rest string, w io.Writer) error {
	cli, err := sessionTraces(s)
	if err != nil {
		return err
	}
	var minDur time.Duration
	var id string
	fields := strings.Fields(rest)
	for i := 0; i < len(fields); i++ {
		switch {
		case fields[i] == "-slow":
			if i+1 >= len(fields) {
				return errors.New("cpdb: traces -slow needs a duration")
			}
			i++
			d, err := time.ParseDuration(fields[i])
			if err != nil {
				return fmt.Errorf("cpdb: traces -slow: %w", err)
			}
			minDur = d
		case id == "":
			id = fields[i]
		default:
			return fmt.Errorf("cpdb: traces takes [-slow DUR] [ID] (got %q)", rest)
		}
	}
	if id != "" {
		spans, err := cli.FetchTrace(ctx, id)
		if err != nil {
			return err
		}
		if len(spans) == 0 {
			return fmt.Errorf("cpdb: no trace %q in the daemon's buffer (evicted, sampled away, or never recorded)", id)
		}
		fmt.Fprintf(w, "trace %s (%d spans):\n", id, len(spans))
		provtrace.Render(w, provtrace.BuildTree(spans))
		return nil
	}
	traces, err := cli.Traces(ctx, minDur, 0)
	if err != nil {
		return err
	}
	if len(traces) == 0 {
		fmt.Fprintln(w, "traces: none buffered")
		return nil
	}
	for _, t := range traces {
		flags := ""
		if t.Err {
			flags += " ERR"
		}
		if t.Slow {
			flags += " SLOW"
		}
		fmt.Fprintf(w, "trace %s  %-16s %s%s\n", t.TraceID, t.Root, t.Dur, flags)
	}
	return nil
}

// wrapStore builds an in-memory editable store from a loaded tree.
func wrapStore(name string, root *tree.Node) Target {
	return NewMemTarget(name, root)
}
