package cpdb_test

import (
	"context"
	"errors"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	cpdb "repro"

	"repro/internal/figures"
)

// sessionOver runs the Figure 3 script (two transactions of five operations)
// over the given backend and returns the session.
func sessionOver(t *testing.T, backend cpdb.Backend, batch int) *cpdb.Session {
	t.Helper()
	s, err := cpdb.New(cpdb.Config{
		Target: cpdb.NewMemTarget("T", figures.T0()),
		Sources: []cpdb.Source{
			cpdb.NewMemSource("S1", figures.S1()),
			cpdb.NewMemSource("S2", figures.S2()),
		},
		Method:          cpdb.HierTrans,
		Backend:         backend,
		BatchSize:       batch,
		StartTid:        figures.FirstTid,
		AutoCommitEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(figures.Script); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestOpenBackendRoundTrip drives a full session through every built-in DSN
// scheme and checks the queries answer identically to the in-memory
// reference.
func TestOpenBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dsns := []string{
		"mem://",
		"mem://?shards=4",
		"rel://" + filepath.Join(dir, "flat.db") + "?create=1",
		"rel://" + filepath.Join(dir, "dur.db") + "?create=1&durable=1",
		"sharded://?shards=3&each=mem://",
		// Sharded over relational shard files; the inner DSN is a query
		// parameter, so it is URL-escaped.
		"sharded://?shards=2&each=" + url.QueryEscape("rel://"+filepath.Join(dir, "shard-%d.db")+"?create=1"),
	}

	ref := sessionOver(t, nil, 1)
	refHist, err := ref.Hist(cpdb.MustParsePath("T/c2/y"))
	if err != nil {
		t.Fatal(err)
	}

	for _, dsn := range dsns {
		b, err := cpdb.OpenBackend(dsn)
		if err != nil {
			t.Fatalf("OpenBackend(%q): %v", dsn, err)
		}
		s := sessionOver(t, b, 1)
		hist, err := s.Hist(cpdb.MustParsePath("T/c2/y"))
		if err != nil {
			t.Fatalf("%s: Hist: %v", dsn, err)
		}
		if !reflect.DeepEqual(hist, refHist) {
			t.Errorf("%s: Hist = %v, want %v", dsn, hist, refHist)
		}
		refRecs, _ := ref.Records()
		recs, err := s.Records()
		if err != nil || !reflect.DeepEqual(recs, refRecs) {
			t.Errorf("%s: Records diverge (%v)", dsn, err)
		}
		if err := s.Close(); err != nil {
			t.Errorf("%s: Close: %v", dsn, err)
		}
	}
}

// thirdPartyDriver is a minimal external driver: it serves mem backends and
// records what it was asked to open.
type thirdPartyDriver struct{ opened []string }

func (d *thirdPartyDriver) Open(dsn cpdb.DSN) (cpdb.Backend, error) {
	d.opened = append(d.opened, dsn.String())
	if dsn.Path != "" {
		return nil, errors.New("thirdparty: no path supported")
	}
	return cpdb.NewMemBackend(), nil
}

// TestThirdPartyDriverSession registers a driver under a new scheme and
// round-trips a full session through it — the extension point a real
// network or cloud store would use.
func TestThirdPartyDriverSession(t *testing.T) {
	drv := &thirdPartyDriver{}
	cpdb.RegisterDriver("thirdparty", drv)
	b, err := cpdb.OpenBackend("thirdparty://")
	if err != nil {
		t.Fatal(err)
	}
	s := sessionOver(t, b, 1)
	defer s.Close()
	tr, err := s.Trace(cpdb.MustParsePath("T/c2/y"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Origin != cpdb.OriginExternal {
		t.Errorf("trace origin = %v, want external (copied from S2)", tr.Origin)
	}
	if len(drv.opened) != 1 || drv.opened[0] != "thirdparty://" {
		t.Errorf("driver saw %v", drv.opened)
	}
	schemes := cpdb.BackendSchemes()
	found := false
	for _, sch := range schemes {
		found = found || sch == "thirdparty"
	}
	if !found {
		t.Errorf("thirdparty missing from schemes %v", schemes)
	}
}

// TestQueryAsOfHistoricalTrace is the time-travel acceptance check:
// Query(AsOf(tid)) over the full store must reproduce exactly the answers a
// session that ran only the script prefix up to tid gives.
func TestQueryAsOfHistoricalTrace(t *testing.T) {
	full := sessionOver(t, nil, 1) // txns 121 (ops 1-5) and 122 (ops 6-10)

	// Re-run only the first transaction's prefix in a fresh session.
	seq, err := cpdb.ParseScript(figures.Script)
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := cpdb.New(cpdb.Config{
		Target: cpdb.NewMemTarget("T", figures.T0()),
		Sources: []cpdb.Source{
			cpdb.NewMemSource("S1", figures.S1()),
			cpdb.NewMemSource("S2", figures.S2()),
		},
		Method:   cpdb.HierTrans,
		StartTid: figures.FirstTid,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range seq[:5] {
		if err := prefix.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := prefix.Commit(); err != nil {
		t.Fatal(err)
	}

	asOf := full.Query(cpdb.AsOf(figures.FirstTid))
	for _, loc := range []string{"T/c1/y", "T/c2", "T/c2/y", "T/c5"} {
		p := cpdb.MustParsePath(loc)
		want, werr := prefix.Trace(p)
		got, gerr := asOf.Trace(p)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s: error mismatch: prefix %v vs asof %v", loc, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: AsOf trace %+v != prefix trace %+v", loc, got, want)
		}
		wantMod, _ := prefix.Mod(p)
		gotMod, err := asOf.Mod(p)
		if err != nil || !reflect.DeepEqual(gotMod, wantMod) {
			t.Errorf("%s: AsOf Mod %v != prefix Mod %v (%v)", loc, gotMod, wantMod, err)
		}
	}

	// The divergence AsOf hides: now, T/c2/y is a copy from S2; as of txn
	// 121 it was a local insert.
	nowTr, err := full.Trace(cpdb.MustParsePath("T/c2/y"))
	if err != nil {
		t.Fatal(err)
	}
	thenTr, err := asOf.Trace(cpdb.MustParsePath("T/c2/y"))
	if err != nil {
		t.Fatal(err)
	}
	if nowTr.Origin != cpdb.OriginExternal || thenTr.Origin != cpdb.OriginInserted {
		t.Errorf("origins now=%v then=%v, want external/inserted", nowTr.Origin, thenTr.Origin)
	}
}

// TestVersionedQueryAt lines provenance-as-of up with data-as-of.
func TestVersionedQueryAt(t *testing.T) {
	v, err := cpdb.NewVersioned(cpdb.Config{
		Target: cpdb.NewMemTarget("T", figures.T0()),
		Sources: []cpdb.Source{
			cpdb.NewMemSource("S1", figures.S1()),
			cpdb.NewMemSource("S2", figures.S2()),
		},
		Method:   cpdb.HierTrans,
		StartTid: figures.FirstTid,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := cpdb.ParseScript(figures.Script)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range seq {
		if err := v.Apply(op); err != nil {
			t.Fatal(err)
		}
		if (i+1)%5 == 0 {
			if _, err := v.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	q, node, err := v.QueryAt(figures.FirstTid)
	if err != nil {
		t.Fatal(err)
	}
	// The archived version must contain the txn-121 state: c2/y exists and
	// is the freshly inserted empty node, not yet S2's copied subtree
	// (which would have an x child).
	y, err := node.Get(cpdb.MustParsePath("c2/y"))
	if err != nil {
		t.Fatalf("version at 121 lacks c2/y: %v", err)
	}
	if y.IsLeaf() {
		t.Error("version at 121 already shows the txn-122 copy (leaf value from S2)")
	}
	tr, err := q.Trace(cpdb.MustParsePath("T/c2/y"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Origin != cpdb.OriginInserted {
		t.Errorf("QueryAt(121) trace origin = %v, want inserted", tr.Origin)
	}
}

// TestQueryRecordsStreaming checks the streaming iterator against the
// materializing Records, its AsOf horizon, early termination, and
// mid-iteration cancellation.
func TestQueryRecordsStreaming(t *testing.T) {
	s := sessionOver(t, cpdb.NewShardedMemBackend(4), 1)
	defer s.Close()

	want, err := s.Records()
	if err != nil {
		t.Fatal(err)
	}
	var got []cpdb.Record
	for rec, err := range s.Query().Records(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed %d records != materialized %d", len(got), len(want))
	}

	// AsOf horizon: only txn-121 records stream.
	for rec, err := range s.Query(cpdb.AsOf(figures.FirstTid)).Records(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if rec.Tid != figures.FirstTid {
			t.Fatalf("AsOf(%d) streamed record of txn %d", figures.FirstTid, rec.Tid)
		}
	}

	// Early break stops the stream without error.
	n := 0
	for _, err := range s.Query().Records(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("early break saw %d records", n)
	}

	// A cancelled context surfaces as the final yielded error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sawErr := false
	for _, err := range s.Query().Records(ctx) {
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("streamed error %v, want context.Canceled", err)
			}
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("cancelled stream yielded no error")
	}
}

// TestSessionClose: Close flushes the batching buffer and releases the
// durable store's files; reopening sees every acknowledged record.
func TestSessionClose(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "prov.db")
	b, err := cpdb.OpenBackend("rel://" + file + "?create=1&durable=1")
	if err != nil {
		t.Fatal(err)
	}
	s := sessionOver(t, b, 64) // batch larger than the record count: all buffered
	n, err := s.RecordCount()  // read-through forces nothing to be lost later
	if err != nil || n == 0 {
		t.Fatalf("count = %d, %v", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(file + ".wal"); err != nil {
		t.Fatalf("WAL missing after close: %v", err)
	}
	b2, err := cpdb.OpenBackend("rel://" + file + "?durable=1")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := b2.Count(context.Background())
	if err != nil || n2 != n {
		t.Fatalf("reopened count = %d, %v; want %d", n2, err, n)
	}
	if err := cpdb.CloseBackend(b2); err != nil {
		t.Fatal(err)
	}
}

// TestOpenFileTargetCorruptFile is the regression test for the silent
// re-initialization bug: a truncated database file must surface a load
// error, not be overwritten with a fresh target.
func TestOpenFileTargetCorruptFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "t.xdb")

	// A fresh path still creates.
	if _, err := cpdb.OpenFileTarget("T", file, figures.T0()); err != nil {
		t.Fatal(err)
	}
	healthy, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(healthy) < 8 {
		t.Fatalf("store file implausibly small (%d bytes)", len(healthy))
	}

	// Truncate the stored file mid-record: opening must fail and must NOT
	// silently recreate the database.
	corrupt := healthy[:len(healthy)/2]
	if err := os.WriteFile(file, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cpdb.OpenFileTarget("T", file, figures.T0()); err == nil {
		t.Fatal("corrupt target file opened (or was silently re-created)")
	}
	after, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, corrupt) {
		t.Error("corrupt file was rewritten by the failed open")
	}

	// Unreadable (permission-denied) files likewise error out rather than
	// being re-created. Root bypasses permission bits, so only assert when
	// the chmod actually bites.
	if err := os.WriteFile(file, healthy, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(file, 0o000); err == nil {
		if f, err := os.Open(file); err != nil {
			if _, err := cpdb.OpenFileTarget("T", file, figures.T0()); err == nil {
				t.Error("permission-denied target file was re-created")
			}
		} else {
			f.Close()
		}
		os.Chmod(file, 0o644)
	}
}
