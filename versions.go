package cpdb

import (
	"errors"

	"repro/internal/archive"
	"repro/internal/provstore"
)

// Versioning glue: provenance links relate locations in the current target
// to locations "in previous versions of T or in external source databases"
// (§1.3), and the paper argues archiving and provenance are both necessary
// to preserve the scientific record (§5). A VersionedSession archives a
// snapshot of the target at every commit, keyed by the transaction id the
// provenance records carry, so every Src field of every record can be
// dereferenced against the exact version it cites.

// A VersionedSession wraps a Session with per-commit archiving.
type VersionedSession struct {
	*Session
	arch *archive.Archive
}

// NewVersioned opens a session that archives the target at every commit.
func NewVersioned(cfg Config) (*VersionedSession, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &VersionedSession{
		Session: s,
		arch:    archive.New(cfg.Target.Name(), s.View()),
	}, nil
}

// Commit commits the provenance transaction and archives the resulting
// version under its transaction id.
func (v *VersionedSession) Commit() (int64, error) {
	tid, err := v.Session.Commit()
	if err != nil {
		return 0, err
	}
	if err := v.arch.Record(tid, v.View()); err != nil {
		return tid, err
	}
	return tid, nil
}

// Versions lists the archived transaction ids (0 is the initial state).
func (v *VersionedSession) Versions() []int64 { return v.arch.Versions() }

// VersionAt returns the archived target as of the end of transaction tid.
func (v *VersionedSession) VersionAt(tid int64) (*Node, error) {
	st, _, ok := v.arch.AsOf(tid)
	if !ok {
		return nil, errors.New("cpdb: no version at or before that transaction")
	}
	return st, nil
}

// QueryAt aligns provenance-as-of with data-as-of: it returns a Query
// pinned at transaction tid (see AsOf) together with the archived target
// version the same transaction produced, so a historical trace can be read
// against exactly the tree it describes. Extra options (e.g. WithContext)
// apply on top of the pinned horizon.
func (v *VersionedSession) QueryAt(tid int64, opts ...QueryOption) (*Query, *Node, error) {
	if tid < 1 {
		// Version 0 is the pre-history initial state; AsOf(0) would mean
		// "now", silently pairing present provenance with the initial tree.
		return nil, nil, errors.New("cpdb: QueryAt needs a committed transaction id (>= 1); use View or VersionAt for the initial state")
	}
	node, err := v.VersionAt(tid)
	if err != nil {
		return nil, nil, err
	}
	q := v.Query(append(append([]QueryOption{}, opts...), AsOf(tid))...)
	return q, node, nil
}

// DiffVersions summarizes the changes between two archived versions.
func (v *VersionedSession) DiffVersions(ta, tb int64) (archive.Diff, error) {
	return v.arch.DiffVersions(ta, tb)
}

// ResolveSource dereferences one trace event against the archive: for a
// copy within the target, it returns the cited source subtree exactly as it
// was in the version the provenance record refers to (the end of
// transaction Tid−1). For events citing external databases it returns
// ErrExternalSource — resolve those through a Federation.
func (v *VersionedSession) ResolveSource(ev Event) (*Node, error) {
	if ev.Op != provstore.OpCopy {
		return nil, errors.New("cpdb: only copy events cite a source")
	}
	if ev.Src.DB() != v.TargetName() {
		return nil, ErrExternalSource
	}
	st, _, ok := v.arch.AsOf(ev.Tid - 1)
	if !ok {
		return nil, errors.New("cpdb: no archived version precedes the copy")
	}
	rel, err := ev.Src.TrimPrefix(MustParsePath(v.TargetName()))
	if err != nil {
		return nil, err
	}
	return st.Get(rel)
}

// ErrExternalSource reports that a cited source lies outside the archived
// target database.
var ErrExternalSource = errors.New("cpdb: source is in an external database")
