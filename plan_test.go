package cpdb_test

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	cpdb "repro"
	"repro/internal/figures"
)

func planSession(t *testing.T) *cpdb.Session {
	t.Helper()
	s, err := cpdb.New(cpdb.Config{
		Target:  cpdb.NewMemTarget("T", figures.T0()),
		Sources: []cpdb.Source{cpdb.NewMemSource("S1", figures.S1()), cpdb.NewMemSource("S2", figures.S2())},
		Method:  cpdb.HierTrans,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(figures.Script); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionPlanKinds drives each query kind through the public Plan
// surface and cross-checks against the classic methods.
func TestSessionPlanKinds(t *testing.T) {
	s := planSession(t)

	res, err := s.Plan("select count")
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.RecordCount()
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != int64(n) {
		t.Errorf("select count = %d, RecordCount = %d", res.Value, n)
	}

	res, err = s.Plan("trace T/c1/y")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace(cpdb.MustParsePath("T/c1/y"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Origin != tr.Origin || len(res.Trace.Events) != len(tr.Events) {
		t.Errorf("plan trace %+v != method trace %+v", res.Trace, tr)
	}

	res, err = s.Plan("mod T")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := s.Mod(cpdb.MustParsePath("T"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tids) != len(mod) {
		t.Errorf("plan mod %v != method mod %v", res.Tids, mod)
	}
}

// TestQueryPlanAsOfPinning: a handle's AsOf horizon applies to plan queries
// that do not carry their own bound — selects get tid<=asof, ancestry kinds
// get asof — while explicit bounds in the text win.
func TestQueryPlanAsOfPinning(t *testing.T) {
	s := planSession(t)
	ctx := context.Background()

	want := 0
	for r, err := range s.Query().Records(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		if r.Tid <= 2 {
			want++
		}
	}
	res, err := s.Query(cpdb.AsOf(2)).Plan("select count")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != int64(want) {
		t.Errorf("AsOf(2) select count = %d, want %d", res.Value, want)
	}

	// An explicit bound in the text wins over the handle's horizon.
	res, err = s.Query(cpdb.AsOf(1)).Plan("select count where tid<=2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != int64(want) {
		t.Errorf("explicit tid<=2 under AsOf(1) counted %d, want %d", res.Value, want)
	}

	// Ancestry kinds: AsOf pins the trace horizon exactly like the classic
	// method under the same option.
	p := cpdb.MustParsePath("T/c1/y")
	for asOf := int64(1); asOf <= 5; asOf++ {
		viaPlan, err := s.Query(cpdb.AsOf(asOf)).Plan("hist " + p.String())
		if err != nil {
			t.Fatal(err)
		}
		viaMethod, err := s.Query(cpdb.AsOf(asOf)).Hist(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(viaPlan.Tids) != len(viaMethod) {
			t.Errorf("asof %d: plan hist %v != method hist %v", asOf, viaPlan.Tids, viaMethod)
		}
	}
}

// TestCLIPlanVerb: the -query "plan …" verb parses, runs and prints a
// declarative query alongside the classic verbs.
func TestCLIPlanVerb(t *testing.T) {
	var out bytes.Buffer
	cfg := cpdb.CLIConfig{
		Demo:        true,
		Script:      writeTempScript(t),
		Method:      "HT",
		CommitEvery: 5,
		Queries: cpdb.StringList{
			"plan select count",
			"plan select where op=C order loc-tid limit 3",
			"plan trace T/c1",
		},
	}
	if err := cpdb.RunCLI(cfg, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"plan select count:", "plan select where op=C order loc-tid limit 3:", "plan trace T/c1:", "origin:"} {
		if !strings.Contains(text, want) {
			t.Errorf("CLI output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "(0 records)") {
		t.Errorf("plan select matched nothing:\n%s", text)
	}
}

func writeTempScript(t *testing.T) string {
	t.Helper()
	f := t.TempDir() + "/fig3.cpdb"
	if err := os.WriteFile(f, []byte(figures.Script), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}
