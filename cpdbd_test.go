package cpdb_test

// End-to-end equivalence of the networked deployment tier: a full CLI
// session over a live loopback cpdb:// service must be byte-identical to the
// same session over the in-process store — the acceptance bar mirrored by
// the CI integration step that boots cmd/cpdbd and diffs the outputs.

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	cpdb "repro"
	"repro/internal/figures"
	"repro/internal/provhttp"
)

// startService serves a fresh mem:// store on a loopback port and returns
// its cpdb:// DSN.
func startService(t *testing.T) string {
	t.Helper()
	inner, err := cpdb.OpenBackend("mem://")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: provhttp.NewServer(inner)}
	go hs.Serve(ln) //nolint:errcheck // reports ErrServerClosed at teardown
	t.Cleanup(func() { hs.Close() })
	return "cpdb://" + ln.Addr().String()
}

// TestCLIEquivalenceOverNetwork runs the paper's Figure 3 script with
// queries and a full provenance dump through RunCLI three ways — in-process
// mem://, over a loopback cpdb:// service, and over the service with
// client-side group-commit batching — and requires byte-identical output.
func TestCLIEquivalenceOverNetwork(t *testing.T) {
	script := filepath.Join(t.TempDir(), "fig3.cpdb")
	if err := os.WriteFile(script, []byte(figures.Script), 0o644); err != nil {
		t.Fatal(err)
	}
	run := func(backendDSN string, batch int) string {
		var out bytes.Buffer
		cfg := cpdb.CLIConfig{
			Demo:        true,
			Script:      script,
			Method:      "HT",
			CommitEvery: 5,
			Backend:     backendDSN,
			BatchSize:   batch,
			Queries:     cpdb.StringList{"hist T/c2/y", "src T/c4/y", "mod T", "trace T/c1/y"},
			Dump:        true,
		}
		if err := cpdb.RunCLI(cfg, &out); err != nil {
			t.Fatalf("RunCLI(%s): %v", backendDSN, err)
		}
		return out.String()
	}

	viaMem := run("mem://", 1)
	viaNet := run(startService(t), 1)
	if viaMem != viaNet {
		t.Errorf("cpdb:// session output differs from mem://\n--- mem ---\n%s--- cpdb ---\n%s", viaMem, viaNet)
	}
	// Client-side batching over the network: queries read through the
	// buffer, so the observable output must not change.
	viaBatched := run(startService(t), 8)
	if viaMem != viaBatched {
		t.Errorf("batched cpdb:// session output differs\n--- mem ---\n%s--- batched ---\n%s", viaMem, viaBatched)
	}
}

// TestSessionPlanSingleRoundTrip pins the declarative layer's headline
// property at the public API: a Session over cpdb:// answers a whole
// remote Trace or Mod — every chain step, every BFS wave — in exactly one
// POST /v1/query, with no scan, point or maxtid round trips behind it.
func TestSessionPlanSingleRoundTrip(t *testing.T) {
	inner, err := cpdb.OpenBackend("mem://")
	if err != nil {
		t.Fatal(err)
	}
	srv := provhttp.NewServer(inner)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // reports ErrServerClosed at teardown
	t.Cleanup(func() { hs.Close() })

	backend, err := cpdb.OpenBackend("cpdb://" + ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s, err := cpdb.New(cpdb.Config{
		Target:  cpdb.NewMemTarget("T", figures.T0()),
		Sources: []cpdb.Source{cpdb.NewMemSource("S1", figures.S1()), cpdb.NewMemSource("S2", figures.S2())},
		Method:  cpdb.HierTrans,
		Backend: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Run(figures.Script); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		text string
		run  func() error
	}{
		{"trace T/c1/y", func() error { _, err := s.Plan("trace T/c1/y"); return err }},
		{"mod T", func() error { _, err := s.Plan("mod T"); return err }},
		{"method Trace", func() error { _, err := s.Trace(cpdb.MustParsePath("T/c1/y")); return err }},
		{"method Mod", func() error { _, err := s.Mod(cpdb.MustParsePath("T")); return err }},
		{"select", func() error { _, err := s.Plan("select where loc>=T/c2 and op=C"); return err }},
	} {
		before := srv.Stats()
		if err := tc.run(); err != nil {
			t.Fatalf("%s: %v", tc.text, err)
		}
		after := srv.Stats()
		if d := after["requests"] - before["requests"]; d != 1 {
			t.Errorf("%s cost %d round trips, want exactly 1", tc.text, d)
		}
		if d := after["endpoint.query"] - before["endpoint.query"]; d != 1 {
			t.Errorf("%s: endpoint.query delta = %d, want 1", tc.text, d)
		}
		if d := after["endpoint.maxtid"] - before["endpoint.maxtid"]; d != 0 {
			t.Errorf("%s: endpoint.maxtid delta = %d, want 0 (horizon resolves server-side)", tc.text, d)
		}
	}
}

// TestSessionCloseFlushesOverNetwork: a Session over cpdb:// with client-side
// batching must push everything to the service by Close, so a second session
// (a different curator) sees the records.
func TestSessionCloseFlushesOverNetwork(t *testing.T) {
	dsn := startService(t)
	backend, err := cpdb.OpenBackend(dsn)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cpdb.New(cpdb.Config{
		Target:    cpdb.NewMemTarget("T", figures.T0()),
		Sources:   []cpdb.Source{cpdb.NewMemSource("S1", figures.S1()), cpdb.NewMemSource("S2", figures.S2())},
		Method:    cpdb.HierTrans,
		Backend:   backend,
		BatchSize: 64, // larger than the record count: nothing flushes on its own
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(figures.Script); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := cpdb.OpenBackend(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer cpdb.CloseBackend(second) //nolint:errcheck // loopback teardown
	n, err := second.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(figures.Fig5d) {
		t.Fatalf("after Close, service holds %d records, want %d", n, len(figures.Fig5d))
	}
}
