package cpdb_test

// Acceptance tests of the end-to-end streaming scan path: Query.Records
// over a live cpdb:// service must cost exactly one /v1/scan-all round
// trip (the pre-cursor implementation issued one round trip per
// transaction), and a full-store drain must allocate O(page), not O(store)
// — measured by the benchmarks below against a reproduction of the old
// materialized path.

import (
	"context"
	"net"
	"net/http"
	"reflect"
	"strconv"
	"testing"

	cpdb "repro"
	"repro/internal/provhttp"
	"repro/internal/provstore"
	"repro/internal/provtrace"
)

// startStatService is startService, but keeps the Server handle so tests
// can assert on its per-endpoint counters.
func startStatService(t *testing.T, inner cpdb.Backend) (string, *provhttp.Server) {
	t.Helper()
	srv := provhttp.NewServer(inner)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // reports ErrServerClosed at teardown
	t.Cleanup(func() { hs.Close() })
	return "cpdb://" + ln.Addr().String(), srv
}

// TestRecordsSingleRoundTripOverNetwork: draining Query.Records against a
// cpdb:// store must issue exactly one /v1/scan-all request and no
// per-transaction scans, and the streamed table must equal the in-process
// one.
func TestRecordsSingleRoundTripOverNetwork(t *testing.T) {
	inner := provstore.NewMemBackend()
	dsn, srv := startStatService(t, inner)
	backend, err := cpdb.OpenBackend(dsn)
	if err != nil {
		t.Fatal(err)
	}
	s := sessionOver(t, backend, 1)
	defer s.Close()

	before := srv.Stats()
	var got []cpdb.Record
	for rec, err := range s.Query().Records(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	after := srv.Stats()

	if n := after["endpoint.scan/all"] - before["endpoint.scan/all"]; n != 1 {
		t.Errorf("Records issued %d /v1/scan-all round trips, want exactly 1", n)
	}
	for _, ep := range []string{"endpoint.scan/tid", "endpoint.tids"} {
		if n := after[ep] - before[ep]; n != 0 {
			t.Errorf("Records issued %d extra %s round trips, want 0", n, ep)
		}
	}
	// Pinning the horizon costs one MaxTid point round trip — cheap and
	// constant, unlike the per-transaction scans it replaced.
	if n := after["endpoint.maxtid"] - before["endpoint.maxtid"]; n != 1 {
		t.Errorf("Records issued %d maxtid round trips, want 1 (the pinned horizon)", n)
	}
	if after["cursors_open"] != 0 {
		t.Errorf("cursors_open = %d after drain", after["cursors_open"])
	}

	// Same table as an in-process run of the same session.
	ref := sessionOver(t, provstore.NewMemBackend(), 1)
	defer ref.Close()
	want, err := ref.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed table over cpdb:// differs from mem://:\n%v\nwant\n%v", got, want)
	}
}

// legacyRecords reproduces the pre-cursor Records path — one scan round
// trip per transaction, the whole table materialized — as the benchmark
// baseline the streamed path is measured against.
func legacyRecords(ctx context.Context, b cpdb.Backend) ([]cpdb.Record, error) {
	tids, err := b.Tids(ctx)
	if err != nil {
		return nil, err
	}
	var out []cpdb.Record
	for _, tid := range tids {
		recs, err := provstore.CollectScan(b.ScanTid(ctx, tid))
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// benchStore loads a store with many small transactions for drain
// benchmarks.
func benchStore(b testing.TB, backend cpdb.Backend) int {
	b.Helper()
	ctx := context.Background()
	total := 0
	for tid := int64(1); tid <= 200; tid++ {
		recs := make([]cpdb.Record, 0, 20)
		for i := 0; i < 20; i++ {
			recs = append(recs, cpdb.Record{
				Tid: tid,
				Op:  provstore.OpInsert,
				Loc: cpdb.MustParsePath("T").Child("t" + strconv.FormatInt(tid, 10)).Child("n" + strconv.Itoa(i)),
			})
		}
		if err := backend.Append(ctx, recs); err != nil {
			b.Fatal(err)
		}
		total += len(recs)
	}
	return total
}

// TestRemoteDrainAllocBound bounds the decode cost of the remote drain hot
// path: draining the 4000-record bench store over a live cpdb:// connection
// must stay under a loose per-record allocation budget. The NDJSON decoder
// interns path strings and segments, so a warm drain re-uses one shared
// Path per distinct location instead of reallocating labels per record; the
// bound has generous headroom (JSON tokenizing allocates) and exists to
// catch order-of-magnitude regressions, not to pin an exact count.
func TestRemoteDrainAllocBound(t *testing.T) {
	inner := provstore.NewMemBackend()
	total := benchStore(t, inner)
	dsn, _ := startStatService(t, inner)
	backend, err := cpdb.OpenBackend(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer provstore.Close(backend) //nolint:errcheck // loopback teardown
	ctx := context.Background()
	drain := func() {
		n := 0
		for _, err := range backend.ScanAll(ctx) {
			if err != nil {
				t.Fatal(err)
			}
			n++
		}
		if n != total {
			t.Fatalf("drained %d of %d", n, total)
		}
	}
	drain() // warm the connection and the intern tables
	perRecord := testing.AllocsPerRun(3, drain) / float64(total)
	const maxAllocsPerRecord = 12
	if perRecord > maxAllocsPerRecord {
		t.Errorf("remote drain allocates %.1f objects/record, budget %d", perRecord, maxAllocsPerRecord)
	}
	t.Logf("remote drain: %.2f allocs/record over %d records", perRecord, total)
}

// BenchmarkScanAllStreamed drains the full store through the ScanAll
// cursor — the Query.Records path after the refactor. Compare B/op with
// BenchmarkScanAllMaterialized: the streamed drain's allocations stay flat
// in store size (an index permutation for the in-memory store; a page for
// file-backed ones) where the materialized path's grow with the table.
func BenchmarkScanAllStreamed(b *testing.B) {
	backend := provstore.NewMemBackend()
	total := benchStore(b, backend)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, err := range backend.ScanAll(ctx) {
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != total {
			b.Fatalf("drained %d of %d", n, total)
		}
	}
}

// benchDrainSharded is the shared body of the tracing-overhead benchmark
// pair: a full drain of the bench store through the sharded scatter-gather
// — the most instrumented local read path (a span per shard plus a cursor
// wrap per shard stream when a recorder is present).
func benchDrainSharded(b *testing.B, traced bool) {
	backend, err := provstore.OpenDSN("mem://?shards=4")
	if err != nil {
		b.Fatal(err)
	}
	total := benchStore(b, backend)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dctx := ctx
		if traced {
			dctx = provtrace.WithRecorder(ctx, provtrace.NewRecorder("", ""))
		}
		n := 0
		for _, err := range backend.ScanAll(dctx) {
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != total {
			b.Fatalf("drained %d of %d", n, total)
		}
	}
}

// BenchmarkScanAllStreamedSharded is the untraced baseline for the tracing
// overhead pair; compare ns/op with BenchmarkScanAllStreamedTraced — the
// traced drain must stay within a few percent, because span cost is per
// shard stream, never per record.
func BenchmarkScanAllStreamedSharded(b *testing.B) { benchDrainSharded(b, false) }

// BenchmarkScanAllStreamedTraced is the same drain with a live span
// recorder on the context (a fresh one per iteration, the real per-request
// cost).
func BenchmarkScanAllStreamedTraced(b *testing.B) { benchDrainSharded(b, true) }

// BenchmarkScanAllMaterialized is the pre-refactor Records path (one
// ScanTid per transaction, everything gathered into a slice), kept as the
// allocation baseline.
func BenchmarkScanAllMaterialized(b *testing.B) {
	backend := provstore.NewMemBackend()
	total := benchStore(b, backend)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := legacyRecords(ctx, backend)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != total {
			b.Fatalf("materialized %d of %d", len(recs), total)
		}
	}
}
