package cpdb_test

// Smoke tests that build and run every example program end to end, so the
// examples in the README cannot rot. Skipped with -short.

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, dir string, wantOutput ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	cmd := exec.Command("go", "run", "./examples/"+dir)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", dir, err, out)
	}
	for _, want := range wantOutput {
		if !strings.Contains(string(out), want) {
			t.Errorf("example %s output missing %q:\n%s", dir, want, out)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "quickstart",
		"=== naive provenance ===",
		"(16 records)",
		"(13 records)",
		"(10 records)",
		"(7 records)",
		"126 C T/c2/y S2/b3/y",
		// The HT query section runs as a single transaction (121).
		"hist  T/c2/y   → [121]",
	)
}

func TestExampleBiocuration(t *testing.T) {
	runExample(t, "biocuration",
		"copied ABC1 and CRP from SwissProt",
		"the data was copied from SwissProt/O95477/PTM/site",
		"copy history of the corrected pubmed field: txns [4]",
	)
}

func TestExampleFederation(t *testing.T) {
	runExample(t, "federation",
		"Ownership history",
		"GenBankish/AF00001/gene",
		"no conflicts between witnesses",
	)
}

func TestExampleBulkupdate(t *testing.T) {
	runExample(t, "bulkupdate",
		"bulk statement expands to 200 copy operations",
		"1 record (1 C MyDB/refs/* Bib/*)",
		"wrongly excluded by the approximation: 0 of 800",
	)
}

func TestExampleNetservice(t *testing.T) {
	runExample(t, "netservice",
		"provenance stored remotely over HTTP",
		"hist T/c2/y = [121]",
		"remote store holds 7 records",
		"server drained and closed",
	)
}

func TestCmdCpdbDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke skipped in -short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/cpdb", "-demo", "-query", "mod T")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cmd/cpdb failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "mod T:") {
		t.Errorf("cmd/cpdb output:\n%s", out)
	}
}

func TestCmdCpdbBenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke skipped in -short mode")
	}
	out, err := exec.Command("go", "run", "./cmd/cpdbbench", "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("cpdbbench -list failed: %v\n%s", err, out)
	}
	for _, id := range []string{"fig5", "fig7", "fig13", "ablation"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("cpdbbench -list missing %s:\n%s", id, out)
		}
	}
}
