// Command cpdbd is the CPDB provenance daemon: it opens a provenance store
// by DSN and serves it over HTTP to any number of cpdb:// clients — the
// deployable form of the provenance database P in the paper's architecture
// (Figure 2), where the curation tools reached P over the network (JDBC to
// MySQL, SOAP to Timber).
//
// Usage:
//
//	cpdbd -addr 127.0.0.1:7070 -backend "mem://?shards=8"
//	cpdbd -addr :7070 -backend "rel://prov.db?create=1&durable=1"
//
// Sessions then reach the store by DSN from any process:
//
//	cpdb -demo -backend cpdb://127.0.0.1:7070 -query "hist T/c2/y"
//
// The daemon answers one HTTP round trip per Backend method (see
// internal/provhttp for the wire contract), and executes whole declarative
// queries server-side at POST /v1/query — a client's Session.Plan, or the
// classic Trace/Src/Hist/Mod methods, ship one plan and stream the rows
// back, so a multi-step trace over the network costs one round trip:
//
//	cpdb -demo -backend cpdb://127.0.0.1:7070 -query "plan select where loc>=T/c2 and op=C"
//
// Observability: expvar-style counters at /v1/stats, Prometheus text
// exposition at GET /metrics (per-endpoint request and latency histograms,
// stream sizes, and the repl.*/auth.* gauges of whatever chain -backend
// names), a readiness probe at /v1/ping, and one structured log line per
// request carrying the client-stamped X-Cpdb-Trace-Id — the same id a
// failing client sees in its error, so one grep correlates both sides.
// -slow-query logs the parsed query text of /v1/query requests over the
// threshold; -pprof mounts the net/http/pprof handlers under /debug/pprof/.
//
// Caching (off by default): -cache-bytes bounds a server-side page cache
// over limit-bounded /v1/scan-all pages — validity is horizon-keyed, so an
// append invalidates simply by moving MaxTid — and -plan-cache caches up
// to N compiled /v1/query plans by canonical query text. Both report
// cpdb_cache_{hits,misses,evictions}_total and cpdb_cache_{bytes,entries}
// at /metrics and cache.page.*/cache.plan.* counters at /v1/stats and in
// the shutdown dump. Clients opt into their own result cache per DSN with
// cpdb://host:port?cache=SIZE (rejected together with verify=pin).
//
// Tracing (off by default): -trace-buffer N keeps the last N request
// traces in a ring, each a span tree covering every layer the request
// crossed — server handler, plan operators, shard scatter legs, proof
// builds, cache hits, downstream rpc hops. A request arriving with
// X-Cpdb-Span-Id continues the caller's trace, so chained daemons yield
// one tree, assembled at read time by GET /v1/traces/{id} on the
// outermost daemon (GET /v1/traces lists summaries; ?min_dur filters).
// -trace-sample R head-samples ordinary traces; slow, failed and
// continued traces are always kept. Kept traces tag /metrics latency
// buckets with {trace_id} exemplars, and -slow-query lines add the
// top-3 spans by self time. Inspect with cpdb -query "traces [ID]".
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests drain (bounded by -shutdown-timeout), and
// the store's group-commit buffers are flushed and its files released
// before exit. The final stats dump asserts cursors_open is 0 — anything
// else means a scan stream leaked past the drain.
//
// Because the cpdb:// driver itself is linked in, -backend may name another
// daemon (cpdb://other:7070), chaining services — useful for fronting a
// remote store with a local batching tier. The replicated:// driver is
// linked in too, so one daemon can serve a replicated store —
//
//	cpdbd -addr :7070 -backend "replicated://?primary=rel%3A%2F%2Fprov.db%3Fcreate%3D1%26durable%3D1&replica=mem://&read=any"
//
// — with per-replica lag and applied-tid gauges (repl.lag.<i>,
// repl.applied_tid.<i>) merged into /v1/stats and always printed by the
// shutdown dump, zero or not.
//
// The verified:// driver is linked in as well: -backend
// "verified://?inner=DSN" maintains a Merkle history tree over the store
// and turns on the proof-serving endpoints (/v1/root, /v1/prove,
// /v1/consistency, plus proofs=1 on the scan and query streams) that
// ?verify=pin clients check answers against. Its auth.* gauges
// (auth.root_tid, auth.proofs_served, auth.verify_failures) join the
// shutdown dump the same way the repl.* gauges do, zero or not.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "repro/internal/provauth" // registers the verified:// backend driver
	"repro/internal/provhttp"
	"repro/internal/provobs"
	_ "repro/internal/provrepl" // registers the replicated:// backend driver
	"repro/internal/provstore"
	"repro/internal/provtrace"
	_ "repro/internal/relprov" // registers the rel:// backend driver
)

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:7070", "listen address (host:port)")
		backendDSN      = flag.String("backend", "mem://", `provenance store DSN to serve, e.g. "mem://?shards=8" or "rel://prov.db?create=1&durable=1"`)
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "how long to drain in-flight requests at shutdown")
		slowQuery       = flag.Duration("slow-query", 0, "log the query text of /v1/query requests slower than this (0 = off)")
		pprofOn         = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")
		cacheBytes      = flag.String("cache-bytes", "", `server-side scan page cache budget, e.g. "16mb" (empty or 0 = off)`)
		planCache       = flag.Int("plan-cache", 0, "cache up to N compiled /v1/query plans (0 = off)")
		traceBuffer     = flag.Int("trace-buffer", 0, "keep the last N request traces in memory, served at /v1/traces (0 = tracing off)")
		traceSample     = flag.Float64("trace-sample", 1.0, "head-sampling ratio for stored traces; slow, failed, and cross-process traces are always kept")
	)
	flag.Parse()

	pageBytes := int64(0)
	if *cacheBytes != "" && *cacheBytes != "0" {
		n, err := provhttp.ParseSizeBytes(*cacheBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpdbd: -cache-bytes:", err)
			os.Exit(1)
		}
		pageBytes = n
	}

	if err := run(*addr, *backendDSN, *shutdownTimeout, *slowQuery, *pprofOn, pageBytes, *planCache, *traceBuffer, *traceSample); err != nil {
		fmt.Fprintln(os.Stderr, "cpdbd:", err)
		os.Exit(1)
	}
}

func run(addr, backendDSN string, shutdownTimeout, slowQuery time.Duration, pprofOn bool, pageBytes int64, planEntries, traceBuffer int, traceSample float64) error {
	// The trace store must exist before the backend opens: background work
	// the backend starts at open time (a replicated store's appliers) roots
	// its traces at the process-wide default sink.
	var traces *provtrace.Store
	if traceBuffer > 0 {
		traces = provtrace.NewStore(traceBuffer, traceSample, slowQuery)
		provtrace.SetDefault(traces)
	}
	backend, err := provstore.OpenDSN(backendDSN)
	if err != nil {
		return err
	}
	opts := []provhttp.ServerOption{
		provhttp.WithRequestLog(slog.New(slog.NewTextHandler(os.Stderr, nil))),
		provhttp.WithSlowQuery(slowQuery),
		provhttp.WithPageCache(pageBytes),
		provhttp.WithPlanCache(planEntries),
	}
	if traces != nil {
		opts = append(opts, provhttp.WithTracing(traces))
	}
	srv := provhttp.NewServer(backend, opts...)

	var handler http.Handler = srv
	if pprofOn {
		// The profiling surface stays off the service mux: it only exists
		// when asked for, under its standard prefix.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		provstore.Close(backend) //nolint:errcheck // open files released on the way out
		return err
	}
	log.Printf("cpdbd: serving %s at cpdb://%s", backendDSN, ln.Addr())
	if pprofOn {
		log.Printf("cpdbd: pprof at http://%s/debug/pprof/", ln.Addr())
	}
	if traces != nil {
		log.Printf("cpdbd: tracing last %d traces at http://%s/v1/traces (sample %g)", traceBuffer, ln.Addr(), traceSample)
	}

	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		provstore.Close(backend) //nolint:errcheck // serve already failed
		return err
	case sig := <-sigc:
		log.Printf("cpdbd: %v: draining (up to %s)", sig, shutdownTimeout)
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// flush the store's group-commit buffers and release its files. A drain
	// overrunning the timeout is cut off so a stuck client cannot block the
	// flush that makes acknowledged records durable.
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("cpdbd: drain incomplete (%v), closing connections", err)
		hs.Close() //nolint:errcheck // forced close after failed drain
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("cpdbd: serve: %v", err)
	}
	if err := provstore.Close(backend); err != nil {
		return fmt.Errorf("flushing store at shutdown: %w", err)
	}
	stats := srv.Stats()
	logStats(stats)
	// After a full drain every scan stream must have finished; a cursor
	// still open names a leak, not traffic.
	if n := stats["cursors_open"]; n != 0 {
		log.Printf("cpdbd: WARNING: gauge cursors_open=%d after drain — a scan stream leaked", n)
	}
	log.Printf("cpdbd: store flushed and closed")
	return nil
}

// logStats prints the final counter snapshot in a stable order — the same
// elision rules /v1/stats consumers rely on (see provobs.DumpLines): zero
// counters drop except the cursor rows — cursors_open is the leak gauge,
// and endpoint.scan/all records whether clients used the streaming
// whole-table cursor — and the repl.*/auth.* gauges, where zero is exactly
// the interesting value (repl.lag.<i>=0 at shutdown means every replica
// drained; auth.verify_failures=0 means no proof request ever named a
// record outside the log).
func logStats(stats map[string]int64) {
	for _, line := range provobs.DumpLines(stats) {
		log.Printf("cpdbd: stat %s", line)
	}
}
