// Command cpdb is a small shell around one CPDB curation session: it loads
// tree databases from XML files (or demo fixtures), applies an update
// script through the provenance-aware editor, and answers provenance
// queries — the command-line analogue of the paper's Web interface.
//
// Usage:
//
//	cpdb -demo -script script.cpdb -query "hist T/c2/y"
//	cpdb -target T=target.xml -source S1=s1.xml -script updates.cpdb -dump
//
// Script syntax is the paper's Figure 3 form:
//
//	insert {c2 : {}} into T;
//	copy S1/a2 into T/c2;
//	delete c5 from T;
//
// Queries: "src PATH", "hist PATH", "mod PATH", "trace PATH".
package main

import (
	"flag"
	"fmt"
	"os"

	cpdb "repro"
)

func main() {
	var cfg cpdb.CLIConfig
	flag.BoolVar(&cfg.Demo, "demo", false, "use the paper's Figure 3/4 demo databases")
	flag.StringVar(&cfg.TargetSpec, "target", "", "target database as NAME=file.xml")
	flag.Var(&cfg.SourceSpecs, "source", "source database as NAME=file.xml (repeatable)")
	flag.StringVar(&cfg.Script, "script", "", "update script file ('-' for stdin)")
	flag.StringVar(&cfg.Method, "method", "HT", "provenance method: N, H, T, HT")
	flag.StringVar(&cfg.Backend, "backend", "", `provenance store DSN, e.g. "mem://?shards=8" or "rel://prov.db?create=1&durable=1"`)
	flag.IntVar(&cfg.CommitEvery, "commit-every", 5, "auto-commit every N operations (0 = manual)")
	flag.IntVar(&cfg.Shards, "shards", 1, "partition the provenance store across N shards")
	flag.IntVar(&cfg.BatchSize, "batch", 1, "group-commit provenance appends in batches of N records")
	flag.Var(&cfg.Queries, "query", `provenance query, e.g. "hist T/c2/y" (repeatable)`)
	flag.BoolVar(&cfg.Analyze, "analyze", false, `EXPLAIN ANALYZE every "plan" query: print per-operator rows and timings`)
	flag.BoolVar(&cfg.Trace, "trace", false, `span-trace the queries and print the trace id; inspect with -query "traces ID" against a -trace-buffer daemon`)
	flag.BoolVar(&cfg.Dump, "dump", false, "dump the provenance table and final target")
	flag.Parse()

	if err := cpdb.RunCLI(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cpdb:", err)
		os.Exit(1)
	}
}
