// Command cpdbbench reruns the evaluation of Buneman, Chapman & Cheney
// (SIGMOD 2006): every table and figure of §4, plus the design-choice
// ablations and the sharded-ingest/group-commit sweep that goes beyond the
// paper, printing the rows/series behind each artifact. See EXPERIMENTS.md
// for the experiment ↔ figure mapping and how to read the output.
//
// Usage:
//
//	cpdbbench                  # run everything at paper scale
//	cpdbbench -exp fig7        # one experiment
//	cpdbbench -exp shard       # sharding × batching ingest throughput
//	cpdbbench -quick           # scaled-down sizes (seconds, for smoke runs)
//	cpdbbench -list            # list experiment ids
//	cpdbbench -steps-long 7000 # override the 14000-step runs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (default: all)")
		quickFlag = flag.Bool("quick", false, "run at scaled-down sizes")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		short     = flag.Int("steps-short", 0, "override the 3500-step runs")
		long      = flag.Int("steps-long", 0, "override the 14000-step runs")
		seed      = flag.Int64("seed", 0, "override the workload seed")
		dir       = flag.String("dir", "", "scratch directory for store files")
		backend   = flag.String("backend", "", `provenance-store DSN template for -exp shard, e.g. "mem://?shards=4" or "rel://{dir}/p{batch}.db?create=1&durable=1"`)
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	rc := bench.Full()
	if *quickFlag {
		rc = bench.Quick()
	}
	if *short > 0 {
		rc.StepsShort = *short
	}
	if *long > 0 {
		rc.StepsLong = *long
	}
	if *seed != 0 {
		rc.Seed = *seed
	}
	rc.Dir = *dir
	rc.BackendDSN = *backend
	if rc.Dir == "" {
		tmp, err := os.MkdirTemp("", "cpdbbench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		rc.Dir = tmp
	}

	experiments := bench.All()
	if *exp != "" {
		e, ok := bench.Find(*exp)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", *exp))
		}
		experiments = []bench.Experiment{e}
	}
	for _, e := range experiments {
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		tabs, err := e.Run(rc)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		for _, tb := range tabs {
			fmt.Println(tb)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpdbbench:", err)
	os.Exit(1)
}
