// Command cpdbbench reruns the evaluation of Buneman, Chapman & Cheney
// (SIGMOD 2006): every table and figure of §4, plus the design-choice
// ablations and the sharded-ingest/group-commit, loopback
// network-service, replication, declarative-query, authenticated-store,
// and read-path-caching sweeps that go beyond the paper,
// printing the rows/series behind each artifact. See EXPERIMENTS.md for the experiment ↔ figure
// mapping and how to read the output.
//
// Usage:
//
//	cpdbbench                  # run everything at paper scale
//	cpdbbench -exp fig7        # one experiment
//	cpdbbench -exp shard       # sharding × batching ingest throughput
//	cpdbbench -exp net         # loopback cpdb:// vs in-process mem://
//	cpdbbench -exp repl        # replicated:// ingest + read fan-out sweep
//	cpdbbench -exp query       # declarative plans: pushdown + 1-RT remote execution
//	cpdbbench -exp auth        # verified:// Merkle-tree overhead + proof cost sweep
//	cpdbbench -exp cache       # client/plan/page caches vs size and horizon churn
//	cpdbbench -quick           # scaled-down sizes (seconds, for smoke runs)
//	cpdbbench -json out.json   # also write machine-readable results
//	cpdbbench -list            # list experiment ids
//	cpdbbench -steps-long 7000 # override the 14000-step runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

// jsonResult is one experiment's machine-readable output.
type jsonResult struct {
	Experiment string         `json:"experiment"`
	Title      string         `json:"title"`
	Seconds    float64        `json:"seconds"`
	Tables     []*bench.Table `json:"tables"`
}

// jsonReport is the -json FILE payload: run metadata plus every table's id,
// header and rows, so perf trajectories can be tracked across commits
// without scraping the text output.
type jsonReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Quick      bool         `json:"quick"`
	Seed       int64        `json:"seed"`
	StepsShort int          `json:"stepsShort"`
	StepsLong  int          `json:"stepsLong"`
	BackendDSN string       `json:"backendDSN,omitempty"`
	Results    []jsonResult `json:"results"`
}

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (default: all)")
		quickFlag = flag.Bool("quick", false, "run at scaled-down sizes")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		short     = flag.Int("steps-short", 0, "override the 3500-step runs")
		long      = flag.Int("steps-long", 0, "override the 14000-step runs")
		seed      = flag.Int64("seed", 0, "override the workload seed")
		dir       = flag.String("dir", "", "scratch directory for store files")
		backend   = flag.String("backend", "", `provenance-store DSN template for -exp shard, e.g. "mem://?shards=4" or "rel://{dir}/p{batch}.db?create=1&durable=1"`)
		jsonOut   = flag.String("json", "", "write machine-readable results (JSON) to FILE")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	rc := bench.Full()
	if *quickFlag {
		rc = bench.Quick()
	}
	if *short > 0 {
		rc.StepsShort = *short
	}
	if *long > 0 {
		rc.StepsLong = *long
	}
	if *seed != 0 {
		rc.Seed = *seed
	}
	rc.Dir = *dir
	rc.BackendDSN = *backend
	if rc.Dir == "" {
		tmp, err := os.MkdirTemp("", "cpdbbench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		rc.Dir = tmp
	}

	experiments := bench.All()
	if *exp != "" {
		e, ok := bench.Find(*exp)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", *exp))
		}
		experiments = []bench.Experiment{e}
	}
	report := jsonReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quickFlag,
		Seed:       rc.Seed,
		StepsShort: rc.StepsShort,
		StepsLong:  rc.StepsLong,
		BackendDSN: rc.BackendDSN,
	}
	for _, e := range experiments {
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		start := time.Now()
		tabs, err := e.Run(rc)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		for _, tb := range tabs {
			fmt.Println(tb)
		}
		report.Results = append(report.Results, jsonResult{
			Experiment: e.ID,
			Title:      e.Title,
			Seconds:    time.Since(start).Seconds(),
			Tables:     tabs,
		})
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cpdbbench: wrote %s\n", *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpdbbench:", err)
	os.Exit(1)
}
