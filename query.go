package cpdb

import (
	"context"
	"iter"
)

// A Query is a configured handle onto a session's provenance store: the
// paper's query interface (Src, Hist, Mod, Trace) plus record streaming,
// with two knobs the plain Session methods pin — the context under which
// backend round trips run, and the transaction horizon tnow the engine
// evaluates against.
//
// The zero configuration (s.Query()) behaves exactly like the legacy
// Session methods: background context, horizon = the store's newest
// transaction. AsOf rewinds the horizon for time travel; WithContext makes
// long scatter-gather queries cancellable.
//
// A Query is immutable after construction and safe for concurrent use.
type Query struct {
	s    *Session
	ctx  context.Context
	asOf int64 // 0 = the store's MaxTid at call time
}

// A QueryOption configures a Query.
type QueryOption func(*Query)

// AsOf pins the query's transaction horizon: every answer is computed as of
// the end of transaction tid, ignoring records of later transactions — the
// engine's time-travel capability, finally exposed. Historical answers
// equal what the same query returned when tid was the newest transaction
// (provenance records are immutable, so the prefix of the store up to tid
// is exactly the store as it was then). Pair with
// VersionedSession.VersionAt (or QueryAt) to line provenance-as-of up with
// data-as-of. tid <= 0 means "now".
func AsOf(tid int64) QueryOption {
	return func(q *Query) {
		if tid > 0 {
			q.asOf = tid
		} else {
			q.asOf = 0
		}
	}
}

// WithContext runs the query's backend round trips under ctx: cancelling it
// stops a sharded scatter-gather between waves and surfaces
// context.Canceled (via errors.Is) from the query method. A nil ctx means
// context.Background().
func WithContext(ctx context.Context) QueryOption {
	return func(q *Query) {
		if ctx == nil {
			ctx = context.Background()
		}
		q.ctx = ctx
	}
}

// Query returns a query handle over the session's provenance store. With no
// options it answers exactly like the legacy Session.Trace/Src/Hist/Mod;
// see AsOf and WithContext.
func (s *Session) Query(opts ...QueryOption) *Query {
	q := &Query{s: s, ctx: context.Background()}
	for _, o := range opts {
		o(q)
	}
	return q
}

// horizon resolves the query's tnow: the pinned AsOf transaction, or the
// store's newest transaction.
func (q *Query) horizon(ctx context.Context) (int64, error) {
	if q.asOf > 0 {
		return q.asOf, nil
	}
	return q.s.backend.MaxTid(ctx)
}

// Trace returns the backward history of the data at p as of the query's
// horizon.
func (q *Query) Trace(p Path) (TraceResult, error) {
	tnow, err := q.horizon(q.ctx)
	if err != nil {
		return TraceResult{}, err
	}
	return q.s.engine.Trace(q.ctx, p, tnow)
}

// Src answers which transaction first created the data at p as of the
// query's horizon; ok is false when the data pre-exists tracking or came
// from an external source.
func (q *Query) Src(p Path) (tid int64, ok bool, err error) {
	tnow, err := q.horizon(q.ctx)
	if err != nil {
		return 0, false, err
	}
	return q.s.engine.Src(q.ctx, p, tnow)
}

// Hist returns every transaction that copied the data at p as of the
// query's horizon, most recent first.
func (q *Query) Hist(p Path) ([]int64, error) {
	tnow, err := q.horizon(q.ctx)
	if err != nil {
		return nil, err
	}
	return q.s.engine.Hist(q.ctx, p, tnow)
}

// Mod returns every transaction up to the query's horizon that created,
// modified or deleted data in the subtree at p.
func (q *Query) Mod(p Path) ([]int64, error) {
	tnow, err := q.horizon(q.ctx)
	if err != nil {
		return nil, err
	}
	return q.s.engine.Mod(q.ctx, p, tnow)
}

// Records streams every stored provenance record up to the query's horizon,
// ordered by (Tid, Loc) — the session's Figure 5 table — through the
// backend's ScanAll cursor: one scan round trip however many transactions
// the store holds (on a cpdb:// store, a single GET /v1/scan-all where the
// pre-cursor implementation issued one scan per transaction), with memory
// bounded by a page/chunk rather than the store. The horizon is pinned when
// iteration starts — AsOf's transaction, or the store's MaxTid at that
// moment — and ends the stream at the first newer transaction; the cursor
// is (Tid, Loc)-ordered, so nothing past the horizon is even pulled off
// the wire, and a transaction committing mid-drain cannot appear torn. The
// context is taken per call (not from WithContext) because iteration can
// long outlive the Query's construction; cancellation (or any store error)
// is yielded as the final pair's error, after which iteration stops.
// Breaking out of the loop releases the cursor (and cancels server-side
// work on a remote store).
//
//	for rec, err := range s.Query().Records(ctx) {
//		if err != nil {
//			return err
//		}
//		...
//	}
func (q *Query) Records(ctx context.Context) iter.Seq2[Record, error] {
	if ctx == nil {
		ctx = context.Background()
	}
	return func(yield func(Record, error) bool) {
		tnow, err := q.horizon(ctx)
		if err != nil {
			yield(Record{}, err)
			return
		}
		for r, err := range q.s.backend.ScanAll(ctx) {
			if err != nil {
				yield(Record{}, err)
				return
			}
			if r.Tid > tnow {
				return // ScanAll is Tid-ascending: everything after is newer
			}
			if !yield(r, nil) {
				return
			}
		}
	}
}
