package cpdb

import (
	"context"
	"iter"

	"repro/internal/provplan"
)

// A Query is a configured handle onto a session's provenance store: the
// paper's query interface (Src, Hist, Mod, Trace) plus record streaming,
// with two knobs the plain Session methods pin — the context under which
// backend round trips run, and the transaction horizon tnow the engine
// evaluates against.
//
// The zero configuration (s.Query()) behaves exactly like the legacy
// Session methods: background context, horizon = the store's newest
// transaction. AsOf rewinds the horizon for time travel; WithContext makes
// long scatter-gather queries cancellable.
//
// A Query is immutable after construction and safe for concurrent use.
type Query struct {
	s    *Session
	ctx  context.Context
	asOf int64 // 0 = the store's MaxTid at call time
}

// A QueryOption configures a Query.
type QueryOption func(*Query)

// AsOf pins the query's transaction horizon: every answer is computed as of
// the end of transaction tid, ignoring records of later transactions — the
// engine's time-travel capability, finally exposed. Historical answers
// equal what the same query returned when tid was the newest transaction
// (provenance records are immutable, so the prefix of the store up to tid
// is exactly the store as it was then). Pair with
// VersionedSession.VersionAt (or QueryAt) to line provenance-as-of up with
// data-as-of. tid <= 0 means "now".
func AsOf(tid int64) QueryOption {
	return func(q *Query) {
		if tid > 0 {
			q.asOf = tid
		} else {
			q.asOf = 0
		}
	}
}

// WithContext runs the query's backend round trips under ctx: cancelling it
// stops a sharded scatter-gather between waves and surfaces
// context.Canceled (via errors.Is) from the query method. A nil ctx means
// context.Background().
func WithContext(ctx context.Context) QueryOption {
	return func(q *Query) {
		if ctx == nil {
			ctx = context.Background()
		}
		q.ctx = ctx
	}
}

// Query returns a query handle over the session's provenance store. With no
// options it answers exactly like the legacy Session.Trace/Src/Hist/Mod;
// see AsOf and WithContext.
func (s *Session) Query(opts ...QueryOption) *Query {
	q := &Query{s: s, ctx: context.Background()}
	for _, o := range opts {
		o(q)
	}
	return q
}

// horizon resolves the query's tnow: the pinned AsOf transaction, or the
// store's newest transaction.
func (q *Query) horizon(ctx context.Context) (int64, error) {
	if q.asOf > 0 {
		return q.asOf, nil
	}
	return q.s.backend.MaxTid(ctx)
}

// run executes one ancestry query kind through the plan layer. The pinned
// AsOf travels inside the query (0 = "now"), so the horizon resolves
// wherever the plan executes — on the daemon for a cpdb:// store, which is
// why a remote Trace costs one round trip, not a MaxTid probe plus one per
// chain step.
func (q *Query) run(kind string, p Path) (*provplan.Result, error) {
	return provplan.Collect(q.ctx, q.s.backend, &provplan.Query{Op: kind, Path: p.String(), AsOf: q.asOf})
}

// Trace returns the backward history of the data at p as of the query's
// horizon.
func (q *Query) Trace(p Path) (TraceResult, error) {
	res, err := q.run(provplan.OpTrace, p)
	if err != nil {
		return TraceResult{}, err
	}
	return res.Trace, nil
}

// Src answers which transaction first created the data at p as of the
// query's horizon; ok is false when the data pre-exists tracking or came
// from an external source.
func (q *Query) Src(p Path) (tid int64, ok bool, err error) {
	res, err := q.run(provplan.OpSrc, p)
	if err != nil {
		return 0, false, err
	}
	return res.Value, res.Found, nil
}

// Hist returns every transaction that copied the data at p as of the
// query's horizon, most recent first.
func (q *Query) Hist(p Path) ([]int64, error) {
	res, err := q.run(provplan.OpHist, p)
	if err != nil {
		return nil, err
	}
	return res.Tids, nil
}

// Mod returns every transaction up to the query's horizon that created,
// modified or deleted data in the subtree at p.
func (q *Query) Mod(p Path) ([]int64, error) {
	res, err := q.run(provplan.OpMod, p)
	if err != nil {
		return nil, err
	}
	if res.Tids == nil {
		return []int64{}, nil
	}
	return res.Tids, nil
}

// Plan parses and runs one declarative provenance query — the textual form
// of the plan algebra (see ParsePlanQuery for the grammar):
//
//	res, err := s.Query().Plan("select where loc>=T/c2 and op=C order loc-tid")
//	res, err := s.Query().Plan("trace T/c3")
//
// The whole query compiles to one plan over the store's cursors; against a
// cpdb:// store the plan ships to the daemon and executes next to the data,
// so any query — a filtered select, a multi-step trace, a mod BFS — costs
// exactly one round trip. A pinned AsOf horizon applies to the parsed query
// when it does not set its own (an explicit "asof N" in the text, or a tid
// bound in a select, wins).
func (q *Query) Plan(text string) (*PlanResult, error) {
	pq, err := provplan.ParseCached(text)
	if err != nil {
		return nil, err
	}
	return q.PlanQuery(pq)
}

// PlanQuery runs one declarative query built programmatically (or parsed by
// ParsePlanQuery). See Plan.
func (q *Query) PlanQuery(pq *PlanQuery) (*PlanResult, error) {
	return provplan.Collect(q.ctx, q.s.backend, q.pin(pq))
}

// PlanRows runs one declarative query and streams its result rows under the
// cursor contract (in-stream errors, prompt release on break) — the
// bounded-memory form of Plan for large selects.
func (q *Query) PlanRows(text string) iter.Seq2[PlanRow, error] {
	pq, err := provplan.ParseCached(text)
	if err != nil {
		return func(yield func(PlanRow, error) bool) { yield(PlanRow{}, err) }
	}
	return provplan.Run(q.ctx, q.s.backend, q.pin(pq))
}

// pin applies the handle's AsOf horizon to a plan query that does not carry
// its own: ancestry kinds get AsOf, selects get an upper tid bound — so
// s.Query(AsOf(5)).Plan("select") time-travels like every other method on
// the handle. The caller's query is never mutated.
func (q *Query) pin(pq *PlanQuery) *PlanQuery {
	if q.asOf <= 0 || pq == nil {
		return pq
	}
	if pq.Op == provplan.OpSelect {
		return pinSelect(pq, q.asOf)
	}
	if pq.AsOf == 0 {
		cp := *pq
		cp.AsOf = q.asOf
		return &cp
	}
	return pq
}

// pinSelect bounds a select (and any join sub-select) at the horizon,
// copying only what it changes.
func pinSelect(pq *PlanQuery, asOf int64) *PlanQuery {
	cp := *pq
	changed := false
	if cp.Where.TidMax == 0 {
		cp.Where.TidMax = asOf
		changed = true
	}
	if cp.Join != nil && cp.Join.Sub != nil {
		if sub := pinSelect(cp.Join.Sub, asOf); sub != cp.Join.Sub {
			cp.Join = &provplan.Join{On: cp.Join.On, Sub: sub}
			changed = true
		}
	}
	if !changed {
		return pq
	}
	return &cp
}

// Records streams every stored provenance record up to the query's horizon,
// ordered by (Tid, Loc) — the session's Figure 5 table — through the
// backend's ScanAll cursor: one scan round trip however many transactions
// the store holds (on a cpdb:// store, a single GET /v1/scan-all where the
// pre-cursor implementation issued one scan per transaction), with memory
// bounded by a page/chunk rather than the store. The horizon is pinned when
// iteration starts — AsOf's transaction, or the store's MaxTid at that
// moment — and ends the stream at the first newer transaction; the cursor
// is (Tid, Loc)-ordered, so nothing past the horizon is even pulled off
// the wire, and a transaction committing mid-drain cannot appear torn. The
// context is taken per call (not from WithContext) because iteration can
// long outlive the Query's construction; cancellation (or any store error)
// is yielded as the final pair's error, after which iteration stops.
// Breaking out of the loop releases the cursor (and cancels server-side
// work on a remote store).
//
//	for rec, err := range s.Query().Records(ctx) {
//		if err != nil {
//			return err
//		}
//		...
//	}
func (q *Query) Records(ctx context.Context) iter.Seq2[Record, error] {
	if ctx == nil {
		ctx = context.Background()
	}
	return func(yield func(Record, error) bool) {
		tnow, err := q.horizon(ctx)
		if err != nil {
			yield(Record{}, err)
			return
		}
		for r, err := range q.s.backend.ScanAll(ctx) {
			if err != nil {
				yield(Record{}, err)
				return
			}
			if r.Tid > tnow {
				return // ScanAll is Tid-ascending: everything after is newer
			}
			if !yield(r, nil) {
				return
			}
		}
	}
}
