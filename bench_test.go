package cpdb_test

// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per table/figure runs the corresponding experiment at a reduced,
// deterministic scale and reports its headline numbers as custom metrics
// (rows, virtual milliseconds); absolute Go ns/op measures the simulator
// itself, not the paper's testbed. `cmd/cpdbbench` runs the same
// experiments at full paper scale.
//
// The Ablation* benchmarks measure the design choices called out in
// DESIGN.md §5 (A1–A4).

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"

	cpdb "repro"

	"repro/internal/bench"
	"repro/internal/figures"
	"repro/internal/path"
	"repro/internal/provquery"
	"repro/internal/provstore"
	"repro/internal/provtest"
	"repro/internal/relstore"
	"repro/internal/update"
	"repro/internal/workload"
)

// benchConfig returns a deterministic small-scale run configuration.
func benchConfig(b *testing.B) bench.RunConfig {
	b.Helper()
	rc := bench.Quick()
	rc.Dir = b.TempDir()
	return rc
}

// reportCell parses a numeric table cell into a named benchmark metric.
func reportCell(b *testing.B, tb *bench.Table, row, col int, name string) {
	b.Helper()
	s := tb.Rows[row][col]
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "MB")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q not numeric", row, col, tb.Rows[row][col])
	}
	b.ReportMetric(v, name)
}

func runExperiment(b *testing.B, f func(bench.RunConfig) ([]*bench.Table, error)) []*bench.Table {
	b.Helper()
	rc := benchConfig(b)
	var tabs []*bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tabs, err = f(rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tabs
}

// BenchmarkTable1 regenerates the experiment matrix (Table 1).
func BenchmarkTable1(b *testing.B) {
	tabs := runExperiment(b, bench.Table1)
	b.ReportMetric(float64(len(tabs[0].Rows)), "experiments")
}

// BenchmarkTable2 regenerates the update patterns (Table 2).
func BenchmarkTable2(b *testing.B) {
	tabs := runExperiment(b, bench.Table2)
	b.ReportMetric(float64(len(tabs[0].Rows)), "patterns")
}

// BenchmarkTable3 regenerates the deletion patterns (Table 3).
func BenchmarkTable3(b *testing.B) {
	tabs := runExperiment(b, bench.Table3)
	b.ReportMetric(float64(len(tabs[0].Rows)), "patterns")
}

// BenchmarkFig5 regenerates the worked example's provenance tables.
func BenchmarkFig5(b *testing.B) {
	tabs := runExperiment(b, bench.Fig5)
	// Rows of tables (a)–(d): 16, 13, 10, 7.
	for i, tb := range tabs {
		b.ReportMetric(float64(len(tb.Rows)), fmt.Sprintf("rows_5%c", 'a'+i))
	}
}

// BenchmarkFig7 regenerates the 3500-step storage experiment (Figure 7).
func BenchmarkFig7(b *testing.B) {
	tabs := runExperiment(b, bench.Fig7)
	tb := tabs[0]
	// Copy-pattern row: N and HT record counts.
	reportCell(b, tb, 2, 1, "copy_rows_N")
	reportCell(b, tb, 2, 4, "copy_rows_HT")
}

// BenchmarkFig8 regenerates the 14000-step storage experiment (Figure 8).
func BenchmarkFig8(b *testing.B) {
	tabs := runExperiment(b, bench.Fig8)
	tb := tabs[0]
	reportCell(b, tb, 0, 1, "mix_rows_N")
	reportCell(b, tb, 0, 7, "mix_rows_HT")
}

// BenchmarkFig9 regenerates the per-operation timing experiment (Figure 9).
func BenchmarkFig9(b *testing.B) {
	tabs := runExperiment(b, bench.Fig9)
	tb := tabs[0]
	reportCell(b, tb, 0, 1, "dataset_vms")
	reportCell(b, tb, 0, 2, "N_add_vms")
	reportCell(b, tb, 3, 5, "HT_commit_vms")
}

// BenchmarkFig10 regenerates the overhead-percentage experiment (Figure 10).
func BenchmarkFig10(b *testing.B) {
	tabs := runExperiment(b, bench.Fig10)
	tb := tabs[0]
	reportCell(b, tb, 0, 3, "N_copy_pct")
	reportCell(b, tb, 3, 3, "HT_copy_pct")
}

// BenchmarkFig11 regenerates the deletion-pattern experiment (Figure 11).
func BenchmarkFig11(b *testing.B) {
	tabs := runExperiment(b, bench.Fig11)
	tb := tabs[0]
	reportCell(b, tb, 0, 2, "delrandom_N_acd")
	reportCell(b, tb, 0, 8, "delrandom_HT_acd")
}

// BenchmarkFig12 regenerates the transaction-length experiment (Figure 12).
func BenchmarkFig12(b *testing.B) {
	rc := benchConfig(b)
	rc.StepsShort = 2100
	var tabs []*bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tabs, err = bench.Fig12(rc)
		if err != nil {
			b.Fatal(err)
		}
	}
	tb := tabs[0]
	reportCell(b, tb, 0, 4, "commit_len7_vms")
	reportCell(b, tb, len(tb.Rows)-1, 4, "commit_len1000_vms")
}

// BenchmarkFig13 regenerates the query-time experiment (Figure 13).
func BenchmarkFig13(b *testing.B) {
	tabs := runExperiment(b, bench.Fig13)
	tb := tabs[0]
	// Aligned rows (4..7): N and T getHist.
	reportCell(b, tb, 4, 5, "N_getHist_vms")
	reportCell(b, tb, 6, 5, "T_getHist_vms")
	reportCell(b, tb, 4, 4, "N_getMod_vms")
}

// --- ablation benchmarks ------------------------------------------------

// BenchmarkAblation_InferOnTheFly (A1): resolving one location's effective
// provenance through on-the-fly hierarchical inference, vs expanding the
// transaction's full Prov view first.
func BenchmarkAblation_InferOnTheFly(b *testing.B) {
	tr := provstore.MustNew(provstore.HierTrans, provstore.Config{
		Backend:  provstore.NewMemBackend(),
		StartTid: figures.FirstTid,
	})
	f := figures.Forest()
	vs, err := provtest.Run(tr, f, figures.Sequence(), 0)
	if err != nil {
		b.Fatal(err)
	}
	loc := path.MustParse("T/c3/y") // inferred from the copy at T/c3
	b.Run("on-the-fly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok, err := provstore.Effective(context.Background(), tr.Backend(), figures.FirstTid, loc); err != nil || !ok {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		recs, _ := provtest.AllSorted(tr.Backend())
		for i := 0; i < b.N; i++ {
			full, err := provstore.ExpandTxn(recs, vs[0].Forest, vs[1].Forest)
			if err != nil {
				b.Fatal(err)
			}
			found := false
			for _, r := range full {
				if r.Loc.Equal(loc) {
					found = true
					break
				}
			}
			if !found {
				b.Fatal("row missing")
			}
		}
	})
}

// BenchmarkAblation_Provlist (A2): the deferred tracker's net-effect
// pruning vs naive per-node tracking on a churn-heavy sequence.
func BenchmarkAblation_Provlist(b *testing.B) {
	seq := update.MustParseScript(`
		copy S1/a3 into T/tmp;
		delete tmp from T;
		copy S2/b2 into T/keep;
		insert {k : {}} into T/keep;
		delete k from T/keep;
	`)
	for _, m := range []provstore.Method{provstore.Transactional, provstore.Naive} {
		b.Run(m.LongName(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := provstore.MustNew(m, provstore.Config{Backend: provstore.NewMemBackend()})
				f := figures.Forest()
				if _, err := provtest.Run(tr, f, seq, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Index (A3): point lookup through the (Tid, Loc) B+tree
// primary key vs an unindexed scan over the same rows — the paper ran its
// query experiment unindexed ("worst-case behavior").
func BenchmarkAblation_Index(b *testing.B) {
	dir := b.TempDir()
	db, err := relstore.Create(dir + "/a3.rel")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(relstore.TableSchema{
		Name: "prov",
		Columns: []relstore.Column{
			{Name: "tid", Type: relstore.TInt},
			{Name: "loc", Type: relstore.TStr},
			{Name: "op", Type: relstore.TStr},
		},
		Key: []string{"tid", "loc"},
	})
	if err != nil {
		b.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tbl.Insert(relstore.Row{int64(i / 5), fmt.Sprintf("T/c%d", i), "C"}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("btree-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tbl.Get(int64((i%n)/5), fmt.Sprintf("T/c%d", i%n)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("heap-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			want := fmt.Sprintf("T/c%d", i%n)
			found := false
			tbl.Scan(func(r relstore.Row) bool {
				if r[1].(string) == want {
					found = true
					return false
				}
				return true
			})
			if !found {
				b.Fatal("row missing")
			}
		}
	})
}

// BenchmarkAblation_RedundantLinks (A4): HT commit with and without
// redundant-link elimination on a nested-copy transaction (§3.2.4).
func BenchmarkAblation_RedundantLinks(b *testing.B) {
	seq := update.MustParseScript(`
		copy S1/a3 into T/r;
		copy S1/a3/x into T/r/x;
		copy S1/a3/y into T/r/y;
	`)
	for _, elim := range []bool{false, true} {
		b.Run(fmt.Sprintf("eliminate=%v", elim), func(b *testing.B) {
			rows := 0
			for i := 0; i < b.N; i++ {
				tr := provstore.MustNew(provstore.HierTrans, provstore.Config{
					Backend:            provstore.NewMemBackend(),
					EliminateRedundant: elim,
				})
				f := figures.Forest()
				if _, err := provtest.Run(tr, f, seq, 0); err != nil {
					b.Fatal(err)
				}
				rows, _ = tr.Backend().Count(context.Background())
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkShardedIngest sweeps the sharded, group-committed ingest
// pipeline (shards × batch size) against the single-shard write-through
// baseline, for both the in-memory store (CPU-bound: gains need cores) and
// the durable WAL-backed relational store (fsync-bound: batching
// group-commits many records per fsync, and shards commit independently).
// Each iteration ingests a fixed workload — workers × ops records through
// one ShardedTracker — so ns/op is comparable across cells; recs/sec is
// also reported. `cpdbbench -exp shard` runs the same sweep as tables.
func BenchmarkShardedIngest(b *testing.B) {
	const workers = 8
	cases := []struct {
		disk          bool
		shards, batch int
		opsPerW       int
	}{
		{false, 1, 1, 2000},
		{false, 4, 64, 2000},
		{false, 8, 64, 2000},
		{true, 1, 1, 250},
		{true, 4, 64, 250},
		{true, 8, 256, 250},
	}
	for _, c := range cases {
		kind := "mem"
		if c.disk {
			kind = "disk"
		}
		b.Run(fmt.Sprintf("%s/shards=%d/batch=%d", kind, c.shards, c.batch), func(b *testing.B) {
			b.ReportAllocs()
			var rps float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var backend provstore.Backend
				var closeAll func() error
				if c.disk {
					var err error
					backend, closeAll, err = bench.DurableShardedBackend(b.TempDir(), "ingest", c.shards, c.batch)
					if err != nil {
						b.Fatal(err)
					}
				} else {
					backend = provstore.NewShardedMem(c.shards)
					if c.batch > 1 {
						backend = provstore.NewBatching(backend, c.batch)
					}
				}
				b.StartTimer()
				var err error
				rps, err = bench.IngestThroughput(backend, provstore.Naive, workers, c.opsPerW, 5)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				n, err := backend.Count(context.Background())
				if err != nil || n != workers*c.opsPerW {
					b.Fatalf("stored %d records (err=%v), want %d", n, err, workers*c.opsPerW)
				}
				if closeAll != nil {
					if err := closeAll(); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
			b.ReportMetric(rps, "recs/sec")
		})
	}
}

// --- microbenchmarks of the core machinery -------------------------------

// BenchmarkTrackerOps measures raw per-operation tracking cost by method.
func BenchmarkTrackerOps(b *testing.B) {
	for _, m := range provstore.AllMethods {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			tr := provstore.MustNew(m, provstore.Config{Backend: provstore.NewMemBackend()})
			tr.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loc := path.New("T", fmt.Sprintf("n%d", i))
				if err := tr.OnInsert(update.Effect{Inserted: []path.Path{loc}}); err != nil {
					b.Fatal(err)
				}
				if (i+1)%5 == 0 {
					if _, err := tr.Commit(); err != nil {
						b.Fatal(err)
					}
					tr.Begin()
				}
			}
		})
	}
}

// BenchmarkQueries measures the three provenance queries over a populated
// store (in-process cost; Figure 13 prices the same calls in virtual time).
func BenchmarkQueries(b *testing.B) {
	rc := bench.Quick()
	seq := bench.MakeSequence(rc, workload.Real, workload.DelRandom, 700)
	tr := provstore.MustNew(provstore.HierTrans, provstore.Config{Backend: provstore.NewMemBackend()})
	f := bench.WorkloadForest(rc)
	if _, err := provtest.Run(tr, f, seq, 7); err != nil {
		b.Fatal(err)
	}
	eng := provquery.New(tr.Backend())
	tnow, _ := eng.MaxTid(context.Background())
	var locs []path.Path
	// Collect probe locations from stored records (guaranteed touched).
	recs, _ := provtest.AllSorted(tr.Backend())
	for _, r := range recs {
		locs = append(locs, r.Loc)
	}
	if len(locs) == 0 {
		b.Fatal("no locations")
	}
	b.Run("src", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Src(context.Background(), locs[i%len(locs)], tnow)
		}
	})
	b.Run("hist", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Hist(context.Background(), locs[i%len(locs)], tnow); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mod", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Mod(context.Background(), locs[i%len(locs)], tnow); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEditorPipeline measures one fully tracked editor operation.
func BenchmarkEditorPipeline(b *testing.B) {
	s, err := cpdb.New(cpdb.Config{
		Target:          cpdb.NewMemTarget("T", figures.T0()),
		Sources:         []cpdb.Source{cpdb.NewMemSource("S1", figures.S1())},
		Method:          cpdb.HierTrans,
		AutoCommitEvery: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Insert(cpdb.MustParsePath("T"), fmt.Sprintf("b%d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBTree measures the storage engine's index.
func BenchmarkBTree(b *testing.B) {
	pagerPath := b.TempDir() + "/bt.rel"
	pager, err := relstore.CreatePager(pagerPath)
	if err != nil {
		b.Fatal(err)
	}
	bp := relstore.NewBufferPool(pager, 256)
	defer bp.Close()
	bt, err := relstore.NewBTree(bp)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("insert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			key := []byte(fmt.Sprintf("key-%09d", i))
			if err := bt.Put(key, []byte("value")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("get", func(b *testing.B) {
		b.ReportAllocs()
		bt.Put([]byte("key-000000001"), []byte("value"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bt.Get([]byte("key-000000001")); err != nil {
				b.Fatal(err)
			}
		}
	})
}
