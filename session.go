package cpdb

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/provstore"
	"repro/internal/update"
)

// Config configures a curation Session.
type Config struct {
	// Target is the curated database being edited. Required.
	Target Target
	// Sources are the external databases data may be copied from.
	Sources []Source
	// Method selects the provenance storage strategy; the default is
	// HierTrans, the paper's best performer.
	Method Method
	// Backend persists provenance records; the default is an in-memory
	// store. Use OpenBackend with a DSN ("mem://?shards=8",
	// "rel://prov.db?create=1&durable=1") to pick a store by
	// configuration.
	Backend Backend
	// Shards partitions the provenance store across N independently
	// locked shards by hash of each record's root-relative location, so
	// concurrent ingest and queries against the store use more than one
	// core. The default (0 or 1) is today's single store. With a nil
	// Backend, N in-memory shards are created; a non-nil Backend must
	// already be sharded (NewShardedMemBackend or NewShardedBackend) when
	// Shards > 1. Sessions sharing one backend must partition the
	// transaction-id space via StartTid.
	Shards int
	// BatchSize groups provenance appends into batches of at least N
	// records flushed together as one group commit — one store round trip
	// (and, for a WAL-backed store, a constant fsync cost) per batch
	// instead of per append. Queries read through the buffer, so results
	// never lag. The default (0 or 1) writes through, exactly today's
	// behavior.
	BatchSize int
	// StartTid numbers the first transaction (default 1).
	StartTid int64
	// AutoCommitEvery, when positive, commits after every N operations
	// (the experiments use 5).
	AutoCommitEvery int
	// EliminateRedundant enables §3.2.4's redundant-link elimination at
	// HT commit.
	EliminateRedundant bool
	// Meter, when set, attributes simulated time per operation category.
	Meter *Meter
}

// A Session is one provenance-tracked editing session: the paper's
// provenance-aware editor plus its query interface.
type Session struct {
	editor  *core.Editor
	backend Backend
	method  Method
}

// New opens a session over the target and sources.
func New(cfg Config) (*Session, error) {
	if cfg.Target == nil {
		return nil, errors.New("cpdb: Config.Target is required")
	}
	backend := cfg.Backend
	switch {
	case backend == nil && cfg.Shards > 1:
		backend = provstore.NewShardedMem(cfg.Shards)
	case backend == nil:
		backend = provstore.NewMemBackend()
	case cfg.Shards > 1:
		if _, ok := backend.(*provstore.ShardedBackend); !ok {
			return nil, errors.New("cpdb: Config.Shards > 1 needs a sharded backend (NewShardedMemBackend / NewShardedBackend) or a nil Backend")
		}
	}
	if cfg.BatchSize > 1 {
		backend = provstore.NewBatching(backend, cfg.BatchSize)
	}
	tracker, err := provstore.New(cfg.Method, provstore.Config{
		Backend:            backend,
		StartTid:           cfg.StartTid,
		EliminateRedundant: cfg.EliminateRedundant,
	})
	if err != nil {
		return nil, err
	}
	ed, err := core.NewEditor(core.Config{
		Target:          cfg.Target,
		Sources:         cfg.Sources,
		Tracker:         tracker,
		Meter:           cfg.Meter,
		AutoCommitEvery: cfg.AutoCommitEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Session{
		editor:  ed,
		backend: backend,
		method:  cfg.Method,
	}, nil
}

// Method returns the session's storage method.
func (s *Session) Method() Method { return s.method }

// TargetName returns the target database's name.
func (s *Session) TargetName() string { return s.editor.TargetName() }

// BackendStore exposes the provenance backend (for federation and size
// accounting).
func (s *Session) BackendStore() Backend { return s.backend }

// View returns a deep copy of the editor's current view of the target.
func (s *Session) View() *Node { return s.editor.TargetView() }

// --- editing ---------------------------------------------------------------

// Flush pushes any provenance appends buffered by Config.BatchSize down to
// the store as one group commit. Queries flush implicitly; call Flush to
// bound the un-persisted tail explicitly (e.g. before process exit). It is
// a no-op for write-through configurations.
func (s *Session) Flush() error { return provstore.Flush(s.backend) }

// Begin opens a provenance transaction explicitly (operations auto-begin).
func (s *Session) Begin() error { return s.editor.Begin() }

// Commit commits the open provenance transaction and returns its id.
func (s *Session) Commit() (int64, error) { return s.editor.Commit() }

// Insert performs `ins {label : value} into parent`; value nil means the
// empty tree.
func (s *Session) Insert(parent Path, label string, value *Node) error {
	return s.editor.Insert(parent, label, value)
}

// Delete removes the node at p and its subtree.
func (s *Session) Delete(p Path) error { return s.editor.Delete(p) }

// CopyPaste copies the subtree at src (in any connected database) over dst
// in the target.
func (s *Session) CopyPaste(src, dst Path) error { return s.editor.CopyPaste(src, dst) }

// Run parses and applies an update script in the paper's Figure 3 syntax.
func (s *Session) Run(script string) error {
	seq, err := update.ParseScript(script)
	if err != nil {
		return err
	}
	_, err = s.editor.ApplySequence(seq)
	return err
}

// Apply applies one parsed update operation.
func (s *Session) Apply(op update.Op) error { return s.editor.Apply(op) }

// TotalOps reports the number of operations applied in this session.
func (s *Session) TotalOps() int { return s.editor.TotalOps() }

// Close flushes any provenance appends still buffered by Config.BatchSize
// and releases the backend's external resources (the database and
// write-ahead-log files of a durable relational store, for every shard of a
// sharded store). The session must not be used afterwards. Sessions over
// purely in-memory backends may skip Close; calling it is still harmless.
func (s *Session) Close() error {
	return provstore.Close(s.backend)
}

// --- provenance queries ------------------------------------------------------
//
// The methods below are the zero-configuration form of the Query handle:
// s.Trace(p) ≡ s.Query().Trace(p), and likewise for Src, Hist, Mod and
// Records. Use Query directly for time travel (AsOf), cancellation
// (WithContext) or record streaming (Query.Records).

// Trace returns the backward history of the data currently at p.
func (s *Session) Trace(p Path) (TraceResult, error) {
	return s.Query().Trace(p)
}

// Src answers which transaction first created the data now at p; ok is
// false when the data pre-exists tracking or came from an external source.
func (s *Session) Src(p Path) (tid int64, ok bool, err error) {
	return s.Query().Src(p)
}

// Hist returns every transaction that copied the data now at p, most
// recent first.
func (s *Session) Hist(p Path) ([]int64, error) {
	return s.Query().Hist(p)
}

// Mod returns every transaction that created, modified or deleted data in
// the subtree at p.
func (s *Session) Mod(p Path) ([]int64, error) {
	return s.Query().Mod(p)
}

// Plan parses and runs one declarative provenance query against the
// session's store — s.Plan(text) ≡ s.Query().Plan(text); see Query.Plan
// for the grammar and the one-round-trip execution on remote stores.
func (s *Session) Plan(text string) (*PlanResult, error) {
	return s.Query().Plan(text)
}

// Records returns every stored provenance record ordered by (Tid, Loc) —
// the session's Figure 5 table, materialized. On large stores prefer the
// streaming Query.Records, which this method drains.
func (s *Session) Records() ([]Record, error) {
	var out []Record
	for rec, err := range s.Query().Records(context.Background()) {
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// RecordCount returns the number of stored provenance records.
func (s *Session) RecordCount() (int, error) { return s.backend.Count(context.Background()) }

// RecordBytes returns the physical size of the stored provenance records.
func (s *Session) RecordBytes() (int64, error) { return s.backend.Bytes(context.Background()) }
