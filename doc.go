// Package cpdb is a Go implementation of the copy-paste provenance system
// of Buneman, Chapman & Cheney, "Provenance Management in Curated
// Databases" (SIGMOD 2006).
//
// CPDB tracks fine-grained "dataflow" provenance for curated databases:
// databases built by hand, largely by copying data from other databases.
// Every user action — insert, delete, copy-paste — on the target database
// is intercepted by a provenance-aware editor and recorded in an auxiliary
// provenance store, as links Prov(Tid, Op, Loc, Src) relating locations in
// the target to locations in earlier versions or in external sources.
//
// The package implements all four storage strategies the paper evaluates —
// naïve, transactional, hierarchical, and hierarchical-transactional — and
// the provenance queries Src, Hist, Mod (and the federated Own), over
// either an in-memory store or a from-scratch relational storage engine.
//
// Beyond the paper, the store scales out: Config.Shards partitions the
// provenance store across independently locked shards (queries
// scatter-gather and merge), and Config.BatchSize group-commits appends —
// one store round trip, and for the WAL-backed relational store a constant
// fsync cost, per batch instead of per record. The defaults reproduce the
// paper's single-store behavior exactly.
//
// # Quick start
//
//	target := cpdb.NewMemTarget("MyDB", nil)
//	source := cpdb.NewMemSource("SwissProt", swissprotTree)
//	s, err := cpdb.New(cpdb.Config{
//		Target:  target,
//		Sources: []cpdb.Source{source},
//	})
//	...
//	err = s.Run(`
//		insert {ABC1 : {}} into MyDB;
//		copy SwissProt/O95477 into MyDB/ABC1/entry;
//	`)
//	tid, err := s.Commit()
//	hist, err := s.Hist(cpdb.MustParsePath("MyDB/ABC1/entry"))
//
// See the examples/ directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package cpdb
