// Package cpdb is a Go implementation of the copy-paste provenance system
// of Buneman, Chapman & Cheney, "Provenance Management in Curated
// Databases" (SIGMOD 2006).
//
// CPDB tracks fine-grained "dataflow" provenance for curated databases:
// databases built by hand, largely by copying data from other databases.
// Every user action — insert, delete, copy-paste — on the target database
// is intercepted by a provenance-aware editor and recorded in an auxiliary
// provenance store, as links Prov(Tid, Op, Loc, Src) relating locations in
// the target to locations in earlier versions or in external sources.
//
// The package implements all four storage strategies the paper evaluates —
// naïve, transactional, hierarchical, and hierarchical-transactional — and
// the provenance queries Src, Hist, Mod (and the federated Own), over an
// in-memory store, a from-scratch relational storage engine, or a networked
// provenance service (cmd/cpdbd) reached through the cpdb:// scheme.
//
// Beyond the paper, the store scales out: Config.Shards partitions the
// provenance store across independently locked shards (queries
// scatter-gather and merge), and Config.BatchSize group-commits appends —
// one store round trip, and for the WAL-backed relational store a constant
// fsync cost, per batch instead of per record. The defaults reproduce the
// paper's single-store behavior exactly.
//
// # Quick start
//
// The provenance database is picked by configuration: OpenBackend resolves
// a DSN ("mem://", "mem://?shards=8", "rel://prov.db?create=1&durable=1",
// "sharded://?…", "cpdb://host:7070", "replicated://?primary=…&replica=…")
// through a driver registry modeled on database/sql, and RegisterDriver
// adds third-party schemes. The cpdb:// scheme speaks to a cpdbd daemon:
// the same sessions, queries and equivalence guarantees, with the
// provenance database running as a shared network service (one HTTP round
// trip per store call). The replicated:// scheme composes any of the
// others into a replicated store: writes are acknowledged by the primary
// synchronously and log-shipped to each replica asynchronously (resuming
// after a crash from the replica's high-water {Tid, Loc} mark), and
// read=any fans reads across caught-up replicas with automatic failover
// back to the primary (DESIGN.md §4). The verified:// scheme wraps any of
// them in an RFC 6962-style Merkle history tree — a root hash per
// committed transaction, logarithmic inclusion and consistency proofs —
// making the provenance log tamper-evident: a cpdb:// client opened with
// ?verify=pin&pin=FILE pins the root on first use and proof-checks every
// record of every read against it, failing closed on any tampered,
// rolled-back or rewritten history, and replicated://?verify=1 appliers
// check shipped records the same way (DESIGN.md §8). The cpdb CLI's
// root, "prove TID LOC" and verify query verbs expose the proofs
// directly.
//
//	backend, err := cpdb.OpenBackend("rel://prov.db?create=1&durable=1")
//	s, err := cpdb.New(cpdb.Config{
//		Target:  cpdb.NewMemTarget("MyDB", nil),
//		Sources: []cpdb.Source{cpdb.NewMemSource("SwissProt", swissprotTree)},
//		Backend: backend,
//	})
//	defer s.Close() // flush buffered appends, release the store's files
//	err = s.Run(`
//		insert {ABC1 : {}} into MyDB;
//		copy SwissProt/O95477 into MyDB/ABC1/entry;
//	`)
//	tid, err := s.Commit()
//	hist, err := s.Hist(cpdb.MustParsePath("MyDB/ABC1/entry"))
//
// Queries come in two forms: the plain Session methods above, and the
// Query handle, which adds time travel, cancellation and streaming:
//
//	then, err := s.Query(cpdb.AsOf(tid)).Trace(p)       // answers as of txn tid
//	mods, err := s.Query(cpdb.WithContext(ctx)).Mod(p)  // cancellable scatter-gather
//	for rec, err := range s.Query().Records(ctx) { … }  // streamed Figure 5 table
//
// Queries can also be posed declaratively: Session.Plan (and Query.Plan /
// Query.PlanRows on the handle) parses a small query language over the
// provenance relation — selects with filters, semi-joins, ordering, limits
// and aggregates, plus the ancestry queries as language forms — and runs it
// as a compiled streaming plan with predicate pushdown into the store's
// index access paths (DESIGN.md §7). On a cpdb:// store the whole query
// ships to the daemon (POST /v1/query) and executes next to the data, so a
// multi-step trace or a mod BFS costs exactly one HTTP round trip:
//
//	res, err := s.Plan("select where loc>=MyDB/ABC1 and op=C limit 25")
//	res, err  = s.Plan("trace MyDB/ABC1/entry asof 3")
//	for row, err := range s.Query().PlanRows("select where loc>=MyDB") { … }
//
// Setting PlanQuery.Analyze (or the CLI's "plan -analyze QUERY") turns a
// plan run into EXPLAIN ANALYZE: every operator reports rows in, rows out
// and wall time in Result.Analysis, and on a cpdb:// store the analysis
// rides back as the result stream's trailer row — still one round trip.
// The deployment is observable end to end: the daemon serves Prometheus
// metrics at GET /metrics (per-endpoint latency histograms, backend-chain
// gauges, internal/provobs), logs one structured line per request under
// the client-stamped X-Cpdb-Trace-Id — the same id a failing client's
// error prints — and dumps its counters on SIGTERM (DESIGN.md §9).
// With -trace-buffer the daemon also records distributed span traces
// (internal/provtrace): every backend hop, shard leg, plan operator and
// proof check becomes a span, chained daemons continue the caller's
// trace across processes via X-Cpdb-Span-Id, and the assembled tree is
// served at GET /v1/traces/{id}, rendered by the cpdb "traces" query
// verb, and linked from /metrics latency buckets by trace-id exemplars
// (DESIGN.md §11).
//
// The read path caches adaptively, exploiting the store's append-only
// order: an answer computed at a horizon stays correct until MaxTid
// moves. A cpdb:// store opened with ?cache=SIZE memoizes whole read
// results client-side, invalidated by the client's own appends and by
// any observed horizon move (stale-until-observed; bit-exact replays
// otherwise), and the daemon's -cache-bytes and -plan-cache flags cache
// encoded scan pages and compiled plans server-side. All caches are off
// by default, export cpdb_cache_* metrics, and are bypassed entirely by
// verify=pin clients, whose answers must carry fresh proofs
// (DESIGN.md §10).
//
// Records rides the store's streaming scan path end to end: every backend
// scan is a pull-based cursor (iter.Seq2[Record, error]), so a full-table
// drain never materializes the relation — file-backed and remote stores
// stream a page/chunk at a time; the in-memory store sorts an index
// permutation (one int per record, no record copies). On a cpdb:// service
// it costs a single scan round trip (the server-side /v1/scan-all cursor,
// plus one MaxTid read pinning the horizon), and it stops promptly —
// releasing locks, connections and server-side work — when the consumer
// breaks out of the loop or cancels ctx.
//
// # Deprecated-but-stable constructors
//
// The original backend constructors — NewMemBackend, NewShardedMemBackend,
// CreateRelBackend, OpenRelBackend, CreateDurableRelBackend,
// OpenDurableRelBackend — predate the DSN opener. They remain supported
// and are now thin wrappers over OpenBackend; new code should prefer
// OpenBackend (each constructor's doc comment names its DSN equivalent).
// NewShardedBackend stays primitive: it composes already-opened stores
// that need not be DSN-expressible.
//
// See the examples/ directory for complete programs, DESIGN.md for the
// system inventory (§2a covers the DSN grammar and query handle), and
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
package cpdb
