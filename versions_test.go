package cpdb_test

import (
	"errors"
	"testing"

	cpdb "repro"

	"repro/internal/figures"
)

func versionedSession(t *testing.T) *cpdb.VersionedSession {
	t.Helper()
	v, err := cpdb.NewVersioned(cpdb.Config{
		Target: cpdb.NewMemTarget("T", figures.T0()),
		Sources: []cpdb.Source{
			cpdb.NewMemSource("S1", figures.S1()),
			cpdb.NewMemSource("S2", figures.S2()),
		},
		Method: cpdb.Naive,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVersionedCommitArchives(t *testing.T) {
	v := versionedSession(t)
	if err := v.Run(`delete c5 from T`); err != nil {
		t.Fatal(err)
	}
	tid1, err := v.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Run(`copy S1/a3 into T/c3`); err != nil {
		t.Fatal(err)
	}
	tid2, err := v.Commit()
	if err != nil {
		t.Fatal(err)
	}
	vs := v.Versions()
	if len(vs) != 3 || vs[0] != 0 || vs[1] != tid1 || vs[2] != tid2 {
		t.Fatalf("Versions = %v", vs)
	}
	// Version 0 is the initial state; tid1 lacks c5; tid2 adds c3.
	v0, err := v.VersionAt(0)
	if err != nil || !v0.Equal(figures.T0()) {
		t.Errorf("version 0 wrong: %v", err)
	}
	v1, err := v.VersionAt(tid1)
	if err != nil || v1.HasChild("c5") || v1.HasChild("c3") {
		t.Errorf("version %d wrong: %s", tid1, v1)
	}
	v2, err := v.VersionAt(tid2)
	if err != nil || !v2.HasChild("c3") {
		t.Errorf("version %d wrong: %s", tid2, v2)
	}
	if _, err := v.VersionAt(-1); err == nil {
		t.Error("version before history should error")
	}
	// Diff between the two committed versions.
	d, err := v.DiffVersions(tid1, tid2)
	if err != nil || len(d.OnlyB) == 0 {
		t.Errorf("Diff = %+v, %v", d, err)
	}
}

// TestResolveSource: a copy within the target dereferences against the
// exact archived version its provenance record cites, even after the
// source location is later changed.
func TestResolveSource(t *testing.T) {
	v := versionedSession(t)
	// Commit 1: establish c1's value. Commit 2: copy c1 to c9.
	// Commit 3: destroy c1.
	if err := v.Run(`insert {marker : before} into T/c1`); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(`copy T/c1 into T/c9`); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(`delete c1 from T`); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Commit(); err != nil {
		t.Fatal(err)
	}

	tr, err := v.Trace(cpdb.MustParsePath("T/c9"))
	if err != nil || len(tr.Events) == 0 {
		t.Fatalf("Trace = %+v, %v", tr, err)
	}
	copyEv := tr.Events[0]
	src, err := v.ResolveSource(copyEv)
	if err != nil {
		t.Fatal(err)
	}
	if !src.HasChild("marker") {
		t.Errorf("resolved source = %s, want the pre-copy c1", src)
	}
	// The source is gone from the live target but the citation resolves.
	if v.View().HasChild("c1") {
		t.Error("c1 should be deleted in the live view")
	}
	// Insert events cite nothing.
	if _, err := v.ResolveSource(cpdb.Event{}); err == nil {
		t.Error("non-copy event should error")
	}
}

func TestResolveExternalSource(t *testing.T) {
	v := versionedSession(t)
	if err := v.Run(`copy S1/a1 into T/got`); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	tr, err := v.Trace(cpdb.MustParsePath("T/got"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ResolveSource(tr.Events[0]); !errors.Is(err, cpdb.ErrExternalSource) {
		t.Errorf("external source: %v", err)
	}
}
